"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_time_never_goes_backwards(delays):
    """Observed timestamps across arbitrary timeout processes are sorted."""
    env = Environment()
    observed = []

    def proc(d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    works=st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=25),
)
@settings(max_examples=50, deadline=None)
def test_resource_never_oversubscribed(capacity, works):
    """At no instant do more than `capacity` processes hold the resource."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_seen = [0]

    def worker(w):
        with res.request() as req:
            yield req
            max_seen[0] = max(max_seen[0], res.count)
            yield env.timeout(w)

    for w in works:
        env.process(worker(w))
    env.run()
    assert max_seen[0] <= capacity
    assert res.count == 0


@given(
    puts=st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_container_conserves_mass(puts):
    """Total put == level + total got at all times; level within bounds."""
    env = Environment()
    tank = Container(env, capacity=sum(puts) + 1)
    got = [0.0]

    def producer():
        for p in puts:
            yield tank.put(p)
            yield env.timeout(0.1)

    def consumer():
        for p in puts:
            yield tank.get(p / 2)
            got[0] += p / 2
            yield env.timeout(0.05)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert tank.level >= -1e-9
    assert abs(tank.level + got[0] - sum(puts)) < 1e-9


@given(items=st.lists(st.integers(), min_size=0, max_size=40))
@settings(max_examples=50, deadline=None)
def test_store_preserves_items_and_order(items):
    """Everything put into a Store comes out, in FIFO order."""
    env = Environment()
    store = Store(env)
    out = []

    def producer():
        for it in items:
            yield store.put(it)

    def consumer():
        for _ in items:
            out.append((yield store.get()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == items


@given(
    sizes=st.lists(st.floats(min_value=1, max_value=1e6), min_size=1, max_size=15),
    bw=st.floats(min_value=1, max_value=1e9),
)
@settings(max_examples=50, deadline=None)
def test_pipe_serialized_duration_is_sum(sizes, bw):
    """A serialized pipe's total busy time equals the sum of service times."""
    from repro.sim import Pipe

    env = Environment()
    pipe = Pipe(env, bandwidth_bps=bw)
    end = [0.0]

    def xfer(n):
        yield env.process(pipe.transfer(n))
        end[0] = env.now

    for n in sizes:
        env.process(xfer(n))
    env.run()
    expected = sum(n / bw for n in sizes)
    assert abs(end[0] - expected) < 1e-6 * max(1.0, expected)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_engine_determinism_under_seeded_load(seed):
    """A randomized workload replayed with the same seed gives identical
    event schedules (the reproduction's determinism guarantee)."""
    import numpy as np

    def run_once():
        rng = np.random.default_rng(seed)
        env = Environment()
        res = Resource(env, capacity=3)
        log = []

        def worker(i, d1, d2):
            yield env.timeout(d1)
            with res.request() as req:
                yield req
                log.append((round(env.now, 9), i))
                yield env.timeout(d2)

        for i in range(20):
            env.process(worker(i, float(rng.random()), float(rng.random())))
        env.run()
        return log

    assert run_once() == run_once()
