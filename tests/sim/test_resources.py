"""Unit tests for Resource/PriorityResource/Container/Store."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


# --------------------------------------------------------------------------- #
# Resource                                                                     #
# --------------------------------------------------------------------------- #
def test_resource_serializes_at_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def worker(i):
        with res.request() as req:
            yield req
            log.append(("start", i, env.now))
            yield env.timeout(10)
        log.append(("end", i, env.now))

    for i in range(4):
        env.process(worker(i))
    env.run()
    starts = {i: t for op, i, t in log if op == "start"}
    assert starts == {0: 0, 1: 0, 2: 10, 3: 10}


def test_resource_count_and_queue():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def waiter():
        yield env.timeout(1)
        with res.request() as req:
            yield req

    env.process(holder())
    env.process(waiter())
    env.run(until=2)
    assert res.count == 1
    assert len(res.queue) == 1
    env.run()
    assert res.count == 0


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_context_manager_releases_on_exception():
    env = Environment()
    res = Resource(env, capacity=1)

    def failing():
        with res.request() as req:
            yield req
            raise RuntimeError("die")

    def after():
        yield env.timeout(1)
        with res.request() as req:
            yield req
            return env.now

    env.process(failing())
    p = env.process(after())
    with pytest.raises(RuntimeError):
        env.run()
    # The slot was released despite the crash; the second process gets it.
    assert env.run(p) == 1


def test_cancel_queued_request_withdraws_it():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    env.process(holder())

    def impatient():
        yield env.timeout(1)
        req = res.request()
        yield env.timeout(1)
        req.cancel()
        granted.append(req.triggered)

    env.process(impatient())
    env.run(until=3)
    # Lazy cancellation: the entry may linger as a tombstone, but it no
    # longer counts as queued and must never be granted.
    assert res.queued == 0
    env.run()
    assert granted == [False]
    assert res.count == 0


# --------------------------------------------------------------------------- #
# PriorityResource                                                             #
# --------------------------------------------------------------------------- #
def test_priority_resource_orders_queue():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(10)

    def worker(i, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(i)
            yield env.timeout(1)

    env.process(holder())
    env.process(worker("low", 5, 1))
    env.process(worker("high", 1, 2))
    env.process(worker("mid", 3, 3))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_ties_fifo():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def worker(i):
        yield env.timeout(1)
        with res.request(priority=7) as req:
            yield req
            order.append(i)
            yield env.timeout(1)

    env.process(holder())
    for i in range(3):
        env.process(worker(i))
    env.run()
    assert order == [0, 1, 2]


# --------------------------------------------------------------------------- #
# Container                                                                     #
# --------------------------------------------------------------------------- #
def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    got_at = []

    def consumer():
        yield tank.get(30)
        got_at.append(env.now)

    def producer():
        yield env.timeout(2)
        yield tank.put(20)
        yield env.timeout(2)
        yield tank.put(20)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got_at == [4]
    assert tank.level == 10


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=50, init=40)
    put_at = []

    def producer():
        yield tank.put(20)
        put_at.append(env.now)

    def consumer():
        yield env.timeout(3)
        yield tank.get(15)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert put_at == [3]
    assert tank.level == 45


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
    tank = Container(env, capacity=10)
    with pytest.raises(ValueError):
        tank.put(-1)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        tank.try_put(-1)
    with pytest.raises(ValueError):
        tank.try_get(-1)


def test_container_idle_put_get_complete_synchronously():
    """Uncontended puts/gets are born processed — no event-loop round
    trip needed (the Store fast-path contract, mirrored)."""
    env = Environment()
    tank = Container(env, capacity=100, init=10)
    p = tank.put(20)
    assert p.triggered and p.processed and tank.level == 30
    g = tank.get(25)
    assert g.triggered and g.processed and tank.level == 5
    # Nothing was scheduled: the environment has no pending events.
    assert env.peek() == float("inf")


def test_container_try_put_try_get_idle_paths():
    env = Environment()
    tank = Container(env, capacity=50, init=0)
    assert tank.try_put(30) and tank.level == 30
    assert not tank.try_put(30), "over capacity must refuse"
    assert tank.level == 30
    assert tank.try_get(10) and tank.level == 20
    assert not tank.try_get(25), "insufficient level must refuse"
    assert tank.level == 20


def test_container_contended_put_takes_slow_path_fifo():
    """A put that does not fit queues; later puts must queue behind it
    (FIFO) even if they would fit, and try_put must refuse."""
    env = Environment()
    tank = Container(env, capacity=50, init=45)
    done = []

    def big_putter():
        yield tank.put(20)  # blocks: 45 + 20 > 50
        done.append(("big", env.now))

    def small_putter():
        yield env.timeout(1)
        assert not tank.try_put(1), "try_put must not jump the queue"
        yield tank.put(1)  # fits, but FIFO-queued behind the big put
        done.append(("small", env.now))

    def consumer():
        yield env.timeout(2)
        yield tank.get(40)

    env.process(big_putter())
    env.process(small_putter())
    env.process(consumer())
    env.run()
    assert done == [("big", 2), ("small", 2)]
    assert tank.level == 45 - 40 + 20 + 1


def test_container_contended_get_takes_slow_path_fifo():
    """A blocked getter is served before a later, smaller get; try_get
    refuses while a getter is queued."""
    env = Environment()
    tank = Container(env, capacity=100, init=5)
    done = []

    def big_getter():
        yield tank.get(30)
        done.append(("big", env.now))

    def small_getter():
        yield env.timeout(1)
        assert not tank.try_get(5), "try_get must not jump the queue"
        yield tank.get(5)
        done.append(("small", env.now))

    def producer():
        yield env.timeout(2)
        yield tank.put(40)

    env.process(big_getter())
    env.process(small_getter())
    env.process(producer())
    env.run()
    assert done == [("big", 2), ("small", 2)]
    assert tank.level == 5 + 40 - 30 - 5


def test_container_try_put_wakes_blocked_getter():
    """The synchronous fast path still settles waiting opposite-side
    events, exactly like the event-based path would."""
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    got_at = []

    def consumer():
        yield tank.get(10)
        got_at.append(env.now)

    def producer():
        yield env.timeout(3)
        assert tank.try_put(15)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got_at == [3]
    assert tank.level == 5


def test_container_try_get_unblocks_queued_putter():
    env = Environment()
    tank = Container(env, capacity=20, init=20)
    put_at = []

    def producer():
        yield tank.put(10)  # blocked at capacity
        put_at.append(env.now)

    def consumer():
        yield env.timeout(4)
        assert tank.try_get(15)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert put_at == [4]
    assert tank.level == 20 - 15 + 10


# --------------------------------------------------------------------------- #
# Store                                                                         #
# --------------------------------------------------------------------------- #
def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)

    def consumer():
        for _ in range(3):
            got.append((yield store.get()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    put_times = []

    def producer():
        for i in range(3):
            yield store.put(i)
            put_times.append(env.now)

    def consumer():
        while True:
            yield env.timeout(5)
            yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run(until=20)
    assert put_times == [0, 5, 10]


def test_store_filtered_get_skips_nonmatching():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        v = yield store.get(lambda x: x >= 10)
        got.append(v)

    def producer():
        yield store.put(1)
        yield store.put(12)
        yield store.put(2)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [12]
    assert list(store.items) == [1, 2]


def test_store_filtered_getter_does_not_block_plain_getter():
    env = Environment()
    store = Store(env)
    got = []

    def filtered():
        v = yield store.get(lambda x: x == "never")
        got.append(("filtered", v))

    def plain():
        yield env.timeout(1)
        v = yield store.get()
        got.append(("plain", v))

    env.process(filtered())
    env.process(plain())

    def producer():
        yield env.timeout(2)
        yield store.put("item")

    env.process(producer())
    env.run(until=5)
    assert got == [("plain", "item")]


def test_store_len():
    env = Environment()
    store = Store(env)

    def producer():
        yield store.put("a")
        yield store.put("b")

    env.process(producer())
    env.run()
    assert len(store) == 2
