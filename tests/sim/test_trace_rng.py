"""Unit tests for the tracer and the named random streams."""

import numpy as np

from repro.sim import Environment, Tracer
from repro.sim.rng import RandomStreams


# --------------------------------------------------------------------------- #
# Tracer                                                                       #
# --------------------------------------------------------------------------- #
def test_tracer_records_with_timestamps():
    env = Environment()
    tracer = Tracer(env)

    def proc():
        yield env.timeout(2)
        tracer.emit("hdfs", "block_read", nbytes=64)

    env.process(proc())
    env.run()
    recs = list(tracer.select("hdfs"))
    assert len(recs) == 1
    assert recs[0].time == 2
    assert recs[0].attrs["nbytes"] == 64


def test_tracer_disabled_still_counts():
    env = Environment()
    tracer = Tracer(env, enabled=False)
    tracer.emit("cat", "evt")
    tracer.emit("cat", "evt")
    assert len(tracer) == 0
    assert tracer.count("cat", "evt") == 2
    assert tracer.count("cat") == 2


def test_tracer_select_filters():
    env = Environment()
    tracer = Tracer(env)
    tracer.emit("a", "x")
    tracer.emit("a", "y")
    tracer.emit("b", "x")
    assert len(list(tracer.select("a"))) == 2
    assert len(list(tracer.select("a", "y"))) == 1
    assert len(list(tracer.select(event="x"))) == 2


def test_tracer_keep_predicate():
    env = Environment()
    tracer = Tracer(env, keep=lambda r: r.attrs.get("big", False))
    tracer.emit("c", "e", big=True)
    tracer.emit("c", "e", big=False)
    assert len(tracer) == 1


def test_tracer_clear():
    env = Environment()
    tracer = Tracer(env)
    tracer.emit("c", "e")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.count("c") == 0


def test_trace_record_str():
    env = Environment()
    tracer = Tracer(env)
    tracer.emit("net", "send", nbytes=10)
    assert "net/send" in str(tracer.records[0])


# --------------------------------------------------------------------------- #
# RandomStreams                                                                #
# --------------------------------------------------------------------------- #
def test_streams_reproducible_across_instances():
    a = RandomStreams(7).stream("x").random(5)
    b = RandomStreams(7).stream("x").random(5)
    assert np.allclose(a, b)


def test_streams_independent_of_creation_order():
    r1 = RandomStreams(7)
    r1.stream("a")
    x1 = r1.stream("b").random(3)

    r2 = RandomStreams(7)
    x2 = r2.stream("b").random(3)  # no prior stream("a")
    assert np.allclose(x1, x2)


def test_different_names_differ():
    r = RandomStreams(7)
    assert not np.allclose(r.stream("a").random(8), r.stream("b").random(8))


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x").random(8)
    b = RandomStreams(2).stream("x").random(8)
    assert not np.allclose(a, b)


def test_stream_is_cached():
    r = RandomStreams(0)
    assert r.stream("s") is r.stream("s")
    assert "s" in r


def test_negative_seed_rejected():
    import pytest

    with pytest.raises(ValueError):
        RandomStreams(-1)
