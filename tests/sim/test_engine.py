"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import Environment, SimulationError


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=5.5).now == 5.5


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(3.0)
        seen.append(env.now)
        yield env.timeout(1.5)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [3.0, 4.5]


def test_timeout_value_is_delivered():
    env = Environment()
    got = []

    def proc():
        v = yield env.timeout(1, value="payload")
        got.append(v)

    env.process(proc())
    env.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_exactly():
    env = Environment()
    ticks = []

    def proc():
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(proc())
    env.run(until=5)
    assert ticks == [1, 2, 3, 4, 5]
    assert env.now == 5


def test_run_until_past_time_raises():
    env = Environment()
    env.run(until=3)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return 42

    p = env.process(proc())
    assert env.run(p) == 42
    assert env.now == 2


def test_run_until_never_triggered_event_is_deadlock():
    env = Environment()
    evt = env.event()

    def waiter():
        yield evt

    env.process(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(evt)


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1)
        order.append(tag)

    for i in range(5):
        env.process(proc(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_step_on_empty_heap_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7)
    assert env.peek() == 7


def test_determinism_same_structure_same_schedule():
    def build():
        env = Environment()
        log = []

        def worker(i):
            yield env.timeout(i % 3)
            log.append((env.now, i))
            yield env.timeout(1)
            log.append((env.now, i))

        for i in range(20):
            env.process(worker(i))
        env.run()
        return log

    assert build() == build()


def test_unhandled_process_failure_propagates_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("boom")

    env.process(bad())
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_handled_failure_does_not_propagate():
    env = Environment()
    caught = []

    def bad():
        yield env.timeout(1)
        raise RuntimeError("boom")

    def guard():
        try:
            yield env.process(bad())
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(guard())
    env.run()
    assert caught == ["boom"]


def test_yielding_non_event_fails_the_process():
    env = Environment()

    def bad():
        yield 42

    p = env.process(bad())
    with pytest.raises(TypeError):
        env.run()
    assert p.triggered and not p.ok


def test_event_from_other_environment_rejected():
    env1, env2 = Environment(), Environment()

    def bad():
        yield env2.timeout(1)

    env1.process(bad())
    with pytest.raises(RuntimeError, match="different Environment"):
        env1.run()


def test_processed_event_count_increases():
    env = Environment()

    def proc():
        yield env.timeout(1)
        yield env.timeout(1)

    env.process(proc())
    env.run()
    assert env.processed_events >= 2
