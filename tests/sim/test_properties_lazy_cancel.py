"""Property-based tests for the lazy-cancellation invariants.

PR-1 made cancellation lazy everywhere: a cancelled queued request is
tombstoned (``_withdrawn``) and dropped at pop time, with periodic
compaction bounding the garbage (``docs/PERFORMANCE.md``). These
hypothesis tests drive random interleavings of request/cancel/release
against :class:`Resource` and :class:`PriorityResource` and check, after
every single operation:

1. a withdrawn request is never served (never triggers, never appears
   among the users);
2. the stale-tombstone count always stays under the compaction policy's
   bound — compaction actually fires past the threshold;
3. capacity is never oversubscribed and live accounting stays exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Interrupt, PriorityResource, Resource
from repro.sim.resources import _COMPACT_MIN

# One step of the interleaving: (operation, target pick, priority pick).
_OPS = st.tuples(
    st.sampled_from(["request", "cancel", "release"]),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=7),
)


def _stale_bound_ok(stale: int, queue_len: int) -> bool:
    """The compaction policy's invariant: once ``stale >= _COMPACT_MIN``
    and tombstones are at least half the queue, a sweep must have run."""
    return not (stale >= _COMPACT_MIN and stale * 2 >= queue_len and stale > 0)


def _check_invariants(res, granted, withdrawn):
    for r in withdrawn:
        assert not r._triggered, "withdrawn request was served"
        assert r not in res.users
    assert len(res.users) <= res.capacity
    assert res.queued >= 0
    if isinstance(res, PriorityResource):
        assert _stale_bound_ok(res._pstale, len(res._pqueue))
    else:
        assert _stale_bound_ok(res._stale, len(res.queue))
    # Every granted-and-not-yet-released request is accounted for.
    for r in granted:
        assert r in res.users


def _drive(res, ops, priority: bool):
    """Apply a random op sequence at the resource API level, checking
    the invariants after every operation."""
    issued = []          # every request ever made, in order
    granted = set()      # triggered and not yet released
    withdrawn = []       # cancelled while still queued
    for op, pick, prio in ops:
        if op == "request":
            req = res.request(priority=prio) if priority else res.request()
            issued.append(req)
            if req._triggered:
                granted.add(req)
        elif issued:
            req = issued[pick % len(issued)]
            if op == "cancel" and not req._triggered and not req._withdrawn:
                req.cancel()
                withdrawn.append(req)
            elif op == "release" and req in granted:
                res.release(req)
                granted.discard(req)
                # The freed slot may have granted queued requests.
                for r in issued:
                    if r._triggered and not r._withdrawn and r in res.users:
                        granted.add(r)
        _check_invariants(res, granted, withdrawn)
    return withdrawn


@given(capacity=st.integers(min_value=1, max_value=4),
       ops=st.lists(_OPS, max_size=250))
@settings(max_examples=80, deadline=None)
def test_resource_random_interleaving_invariants(capacity, ops):
    env = Environment()
    res = Resource(env, capacity=capacity)
    withdrawn = _drive(res, ops, priority=False)
    # Draining every queued request must still never revive a tombstone.
    for r in list(res.users):
        res.release(r)
    for r in withdrawn:
        assert not r._triggered


@given(capacity=st.integers(min_value=1, max_value=4),
       ops=st.lists(_OPS, max_size=250))
@settings(max_examples=80, deadline=None)
def test_priority_resource_random_interleaving_invariants(capacity, ops):
    env = Environment()
    res = PriorityResource(env, capacity=capacity)
    withdrawn = _drive(res, ops, priority=True)
    for r in list(res.users):
        res.release(r)
    for r in withdrawn:
        assert not r._triggered


@given(
    holds=st.lists(st.floats(min_value=0.25, max_value=4.0), min_size=1, max_size=8),
    cancels=st.lists(st.floats(min_value=0.0, max_value=8.0), min_size=1, max_size=60),
    capacity=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_withdrawn_requests_never_served_under_simulation(holds, cancels, capacity):
    """Full-engine variant: holder processes occupy the resource while
    fickle processes request, wait a random delay, and cancel. No
    cancelled-in-queue request may ever be granted afterwards."""
    env = Environment()
    res = PriorityResource(env, capacity=capacity)
    served_after_withdraw = []

    def holder(d):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(d)

    def fickle(i, d):
        req = res.request(priority=1 + i % 3)
        yield env.timeout(d)
        if not req._triggered:
            req.cancel()
            was_withdrawn = req._withdrawn
            yield env.timeout(1.0)
            if was_withdrawn and req._triggered:
                served_after_withdraw.append(req)
        else:
            res.release(req)

    for d in holds:
        env.process(holder(d))
    for i, d in enumerate(cancels):
        env.process(fickle(i, d))
    env.run()
    assert not served_after_withdraw
    assert res.count == 0
    assert res.queued == 0


@given(n=st.integers(min_value=_COMPACT_MIN, max_value=4 * _COMPACT_MIN))
@settings(max_examples=20, deadline=None)
def test_mass_cancellation_compacts_past_threshold(n):
    """Cancelling a whole wave of queued requests must leave the queue
    compacted (tombstones swept), not a graveyard that pop-time skipping
    would have to wade through forever."""
    env = Environment()
    for res in (Resource(env, capacity=1), PriorityResource(env, capacity=1)):
        hold = res.request()
        assert hold._triggered
        reqs = [res.request() for _ in range(n)]
        for r in reqs:
            r.cancel()
        if isinstance(res, PriorityResource):
            stale, qlen = res._pstale, len(res._pqueue)
            tombstones = sum(1 for e in res._pqueue if e[2]._withdrawn)
        else:
            stale, qlen = res._stale, len(res.queue)
            tombstones = sum(1 for r in res.queue if r._withdrawn)
        assert tombstones == stale
        assert _stale_bound_ok(stale, qlen), "compaction did not fire past threshold"
        assert stale < _COMPACT_MIN, "tombstone garbage exceeds the policy bound"
        assert res.queued == 0
        res.release(hold)


def test_interrupted_waiter_does_not_leak_slot():
    """A waiter interrupted mid-queue releases via the context manager;
    the slot bookkeeping must come back to zero (regression guard for
    the tombstone + interrupt interaction)."""
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            order.append("holder")
            yield env.timeout(5.0)

    def victim():
        try:
            with res.request() as req:
                yield req
                order.append("victim")  # pragma: no cover - never granted
        except Interrupt:
            order.append("interrupted")

    def heir():
        with res.request() as req:
            yield req
            order.append("heir")

    env.process(holder())
    v = env.process(victim())
    env.process(heir())

    def killer():
        yield env.timeout(1.0)
        v.interrupt("go away")

    env.process(killer())
    env.run()
    assert order == ["holder", "interrupted", "heir"]
    assert res.count == 0 and res.queued == 0
