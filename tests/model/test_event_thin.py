"""Model-layer tests: event-thin protocol invariants and parity.

The event-thin cluster protocol (``repro.modelmode``) intentionally
changes the simulated timeline — work-less heartbeats are elided, parked
trackers wake on demand, the Monte-Carlo offload collapses into one
composite event — so its contract is pinned from four directions:

1. **Parity** — reference model mode (``REPRO_MODEL_REFERENCE``)
   reproduces the pre-overhaul golden series byte for byte (frozen under
   ``tests/model/data/`` when the goldens were re-frozen for the thin
   protocol).
2. **Event-count regression** — events-per-job must stay at least 2x
   below the reference protocol at fixed node counts, and must not creep
   back up with cluster size (the "heartbeats scale with idle nodes"
   failure mode this overhaul removed).
3. **No starvation** (hypothesis) — elision never strands work: every
   random workload completes under the thin protocol, in about the time
   the reference protocol takes.
4. **Fault detection** — a killed tracker is still declared lost within
   ``heartbeat_timeout_s`` (plus monitor granularity) of its death, even
   though live trackers now heartbeat as rarely as every
   ``keepalive`` period.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.modelmode as modelmode
from repro.core.simexec import SimulatedCluster, run_pi_job, run_workload_mix
from repro.experiments import run_sweep
from repro.hadoop import JobConf
from repro.perf import Backend, PAPER_CALIBRATION

CAL = PAPER_CALIBRATION
DATA_DIR = Path(__file__).parent / "data"

#: Reduced grids matching the golden suite at the time the reference
#: fixtures were frozen (pre-overhaul tests/golden/data bytes).
PARITY_CASES = {
    "fig8": {"nodes": [2, 4], "samples": 1e9},
    "multijob": {"num_jobs": [2, 4], "nodes": 2},
    "sched_compare": {"nodes": [2, 4]},
    "fig7": {"nodes": 4, "samples": [1e4, 1e8]},
    # Elastic-membership families (frozen under the reference model when
    # they were introduced): churn and preemption decisions must stay
    # byte-stable under the fixed-interval protocol too.
    "elastic": {"nodes": [2, 4]},
    "spot_storm": {"revoked": [0, 2]},
    "sla_mix": {"nodes": [2, 4]},
}


@pytest.fixture
def reference_model():
    prev = modelmode.set_model_reference(True)
    try:
        yield
    finally:
        modelmode.set_model_reference(prev)


def _run_modes(fn, *args, **kwargs):
    """Run a job builder under (reference, thin) model modes."""
    out = []
    for reference in (True, False):
        prev = modelmode.set_model_reference(reference)
        try:
            out.append(fn(*args, **kwargs))
        finally:
            modelmode.set_model_reference(prev)
    return out


# --------------------------------------------------------------------------- #
# 1. Reference-model parity                                                    #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("fig", sorted(PARITY_CASES))
def test_reference_model_reproduces_pre_overhaul_goldens(fig, reference_model):
    """`REPRO_MODEL_REFERENCE=1` must land on the exact bytes the golden
    suite froze *before* the event-thin overhaul."""
    result = run_sweep(fig, PARITY_CASES[fig], workers=1)
    golden = (DATA_DIR / f"{fig}.reference-model.golden.json").read_text()
    assert result.pretty_json() == golden, (
        f"{fig}: the reference model protocol drifted from its frozen "
        f"pre-overhaul bytes — the parity flag no longer reproduces the "
        f"old timeline"
    )


def test_modes_sampled_at_cluster_construction(reference_model):
    """Like the engine flag, the model flag binds at construction: a
    cluster built under reference mode keeps the fixed-interval protocol
    — heartbeats *and* kernels, which sample the mode per task attempt
    through the TaskContext — even if the default flips mid-run."""
    sim = SimulatedCluster(2, seed=1)
    assert sim.jobtracker.event_thin is False
    modelmode.set_model_reference(False)
    assert sim.jobtracker.event_thin is False  # unchanged
    assert SimulatedCluster(2, seed=1).jobtracker.event_thin is True

    # The whole timeline must stay pure reference protocol: running the
    # reference-built cluster *after* the flip lands on the same bytes
    # as a run performed entirely under reference mode.
    conf = JobConf(name="bind", workload="pi",
                   backend=Backend.CELL_SPE_DIRECT, samples=1e9,
                   num_map_tasks=4, num_reduce_tasks=1)
    mixed_ms = sim.run_job(conf).makespan_s
    modelmode.set_model_reference(True)
    pure_ms = SimulatedCluster(2, seed=1).run_job(conf).makespan_s
    assert mixed_ms == pure_ms


# --------------------------------------------------------------------------- #
# 2. Event-count regression                                                    #
# --------------------------------------------------------------------------- #


def _pi_events(nodes: int, samples: float) -> tuple[int, float]:
    result, sim = run_pi_job(
        nodes, samples, Backend.CELL_SPE_DIRECT, return_cluster=True
    )
    assert result.succeeded
    return sim.env.processed_events, result.makespan_s


def test_events_per_job_halved_at_64_nodes():
    """The PR-4 acceptance floor: events per job at 64 nodes drops >= 2x
    vs the reference protocol (measured, not assumed)."""
    (ref_events, _), (thin_events, _) = _run_modes(_pi_events, 64, 1e10)
    assert thin_events * 2 <= ref_events, (
        f"event-thin protocol only reduced events x{ref_events / thin_events:.2f}"
    )


def test_events_per_task_does_not_grow_with_cluster_size():
    """Under the thin protocol, per-task event cost must stay flat as
    idle/busy heartbeat traffic scales out — the whole point of demand-
    driven wakeups. (Reference-protocol cost grows with node count.)"""
    per_task = {}
    for nodes in (16, 64):
        events, _ = _pi_events(nodes, 1e10)
        per_task[nodes] = events / (nodes * CAL.mappers_per_node)
    assert per_task[64] <= per_task[16] * 1.25, per_task


def test_makespan_drift_is_bounded():
    """The thin protocol trades exact JobTracker queue timing for event
    count; the drift it may introduce is small and bounded."""
    for nodes, samples in ((4, 1e9), (16, 1e10), (64, 1e10)):
        (_, ref_ms), (_, thin_ms) = _run_modes(_pi_events, nodes, samples)
        assert abs(thin_ms - ref_ms) / ref_ms < 0.15, (nodes, ref_ms, thin_ms)


def test_decision_counters_surface_assignments():
    """The mechanism counters the CLI/report surface add up: one
    assignment per map+reduce task when nothing fails or speculates."""
    mix, sim = run_workload_mix(4, num_jobs=2, scheduler="fair",
                                data_gb=0.5, samples=5e8, return_cluster=True)
    assert mix.succeeded
    counters = mix.decision_counters
    tasks = sum(r.num_maps + r.num_reduces for r in mix.results)
    assert counters["assignments"] == tasks
    assert counters["speculative_assignments"] == 0
    assert counters["kills_issued"] == 0
    assert counters["heartbeats"] >= 1
    assert mix.scheduler == "fair"
    assert counters == sim.jobtracker.decision_counters()


# --------------------------------------------------------------------------- #
# 3. No starvation (hypothesis)                                                #
# --------------------------------------------------------------------------- #


@given(
    policy=st.sampled_from(["fifo", "fair", "locality", "accel"]),
    nodes=st.integers(min_value=1, max_value=4),
    num_jobs=st.integers(min_value=1, max_value=3),
    stagger=st.sampled_from([0.0, 5.0, 20.0]),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=12, deadline=None)
def test_elision_never_starves_work(policy, nodes, num_jobs, stagger, seed):
    """Event-thin heartbeats never strand a tracker with free slots
    while work is pending: every workload completes, no slower than the
    fixed-interval protocol plus one heartbeat round of wakeup slack per
    job wave (in practice the thin timeline is within a few percent)."""
    def _mix():
        mix = run_workload_mix(
            nodes, num_jobs=num_jobs, scheduler=policy, stagger_s=stagger,
            data_gb=0.25, samples=5e8, accelerated_fraction=0.5, seed=seed,
        )
        assert mix.succeeded
        return mix.makespan_s

    ref_ms, thin_ms = _run_modes(_mix)
    slack = 2 * CAL.heartbeat_interval_s * num_jobs
    assert thin_ms <= ref_ms * 1.10 + slack, (ref_ms, thin_ms)


@given(samples=st.sampled_from([2e9, 4e9, 8e9]),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=8, deadline=None)
def test_speculation_still_fires_under_elision(samples, seed):
    """A straggler's duplicate needs a heartbeat from *another* tracker
    with a free slot while the straggler still runs; elision must keep
    those heartbeats flowing (speculative jobs count as demand). Sizes
    start at 2e9 samples so the straggler outlives the 1.5x-mean
    detection criterion under either protocol."""
    sim = SimulatedCluster(4, seed=seed, slow_nodes={1: 8.0})
    result = sim.run_job(JobConf(
        name="spec", workload="pi", backend=Backend.CELL_SPE_DIRECT,
        samples=samples, num_map_tasks=8, num_reduce_tasks=1,
        speculative=True,
    ))
    assert result.succeeded
    assert result.counters.get("speculative_attempts", 0) >= 1
    assert sim.jobtracker.decision_counters()["speculative_assignments"] >= 1


# --------------------------------------------------------------------------- #
# 4. Fault detection under keepalive heartbeats                                #
# --------------------------------------------------------------------------- #


def _lost_time(sim) -> float:
    records = [r for r in sim.cluster.tracer.records if r.event == "tracker_lost"]
    assert records, "tracker loss never declared"
    return records[0].time


@given(kill_at=st.floats(min_value=1.0, max_value=40.0),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_fault_detection_within_timeout(kill_at, seed):
    """Keepalive reporting must not blunt the failure detector: a tracker
    killed at any point — parked or mid-protocol — is declared lost no
    later than ``heartbeat_timeout_s`` after its last sign of life plus
    one monitor wakeup of slack."""
    sim = SimulatedCluster(3, seed=seed, trace=True)
    conf = JobConf(name="victim", workload="pi",
                   backend=Backend.CELL_SPE_DIRECT, samples=4e10,
                   num_map_tasks=6, num_reduce_tasks=1)
    sim.start()
    job = sim.jobtracker.submit_job(conf)

    def _killer():
        yield sim.env.timeout(kill_at)
        sim.decommission(2, kill_datanode=False)

    sim.env.process(_killer())
    result = sim.env.run(job.completion)
    assert result.succeeded  # recovery actually happened
    bound = kill_at + CAL.heartbeat_timeout_s + 2 * CAL.heartbeat_interval_s
    # A late kill can leave the job finishing before the detection
    # deadline; the declaration contract is about the monitor, not the
    # job, so give the monitor its full window before asserting.
    if sim.env.now < bound:
        sim.env.run(until=bound)
    lost = _lost_time(sim)
    assert lost <= bound, (kill_at, lost, bound)
    # ...and not spuriously early either: silence shorter than the
    # timeout must never trigger a declaration.
    assert lost >= kill_at + CAL.heartbeat_timeout_s - CAL.heartbeat_timeout_s * modelmode.KEEPALIVE_FACTOR


def test_live_parked_trackers_are_never_declared_dead():
    """A fully-parked cluster (long tasks, every slot busy) keeps its
    keepalive cadence under the failure timeout — nobody is falsely
    declared lost during a 10-minute task wave."""
    sim = SimulatedCluster(4, seed=3, trace=True)
    result = sim.run_job(JobConf(
        name="long", workload="pi", backend=Backend.JAVA_PPE,
        samples=2e10, num_map_tasks=8, num_reduce_tasks=0,
    ))
    assert result.succeeded
    assert not [r for r in sim.cluster.tracer.records if r.event == "tracker_lost"]
    assert len(sim.jobtracker.live_trackers) == 4
