"""CI smoke for the engine perf harness.

Runs ``benchmarks/run_perf.py --smoke`` in-process: small microbenchmark
sizes, a two-point Fig-8 slice, the trace-determinism check, and a
wall-clock budget. Speed *targets* are asserted only by the full harness
(they need quiet hardware); this smoke asserts the determinism contract
and that the harness itself stays runnable, while the budget catches
pathological slowdowns.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT))

from benchmarks import run_perf  # noqa: E402


def test_run_perf_smoke(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    rc = run_perf.main(["--smoke", "--out", str(out), "--budget-s", "300"])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["mode"] == "smoke"
    assert report["trace_determinism_ok"] is True
    assert report["fig8_sweep"]["series_byte_identical"] is True
    micros = report["microbench"]
    assert set(run_perf.MICROS) <= set(micros)
    for name in run_perf.MICROS:
        assert micros[name]["wallclock_speedup_median"] > 0
    # The lazy-deletion fix is algorithmic, not timing-sensitive: even a
    # noisy host shows the cancel storm far faster than eager heapify.
    assert micros["cancel_churn"]["wallclock_speedup_median"] > 2.0
    # Sweep bench: pooling/caching/sharding must stay byte-neutral, and
    # the point cache's executed-point reduction is a pure count.
    sweep_bench = report["sweep_bench"]
    assert sweep_bench["pool_dispatch"]["bytes_identical"] is True
    assert sweep_bench["point_cache"]["bytes_identical"] is True
    assert sweep_bench["point_cache"]["executed_reduction"] >= 5.0
    assert all(sweep_bench["shard_merge"]["sha256_identical"].values())
