"""Integration tests for the extension features: stragglers +
speculation, dynamic membership, re-replication, and the functional
distributed-verification mode."""

import pytest

from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf
from repro.hadoop.job import JobState, TaskKind
from repro.workloads.aes import AES128
from repro.workloads.generators import random_bytes

CAL = PAPER_CALIBRATION


# --------------------------------------------------------------------------- #
# Stragglers + speculative execution                                           #
# --------------------------------------------------------------------------- #
def run_pi_with_straggler(speculative: bool):
    sim = SimulatedCluster(4, slow_nodes={1: 8.0})
    conf = JobConf(
        name="straggler", workload="pi", backend=Backend.JAVA_PPE,
        samples=4e9, num_map_tasks=8, speculative=speculative,
    )
    return sim.run_job(conf)


def test_straggler_slows_job_without_speculation():
    normal = SimulatedCluster(4).run_job(JobConf(
        name="n", workload="pi", backend=Backend.JAVA_PPE,
        samples=4e9, num_map_tasks=8))
    slow = run_pi_with_straggler(speculative=False)
    assert slow.makespan_s > normal.makespan_s * 3


def test_speculation_rescues_straggler():
    """With a free-slot supply, speculation re-runs the slow node's
    tasks elsewhere and cuts the makespan substantially."""
    without = run_pi_with_straggler(speculative=False)
    with_spec = run_pi_with_straggler(speculative=True)
    assert with_spec.succeeded
    assert with_spec.counters.get("speculative_attempts", 0) >= 1
    assert with_spec.makespan_s < without.makespan_s * 0.6


def test_speculation_does_not_duplicate_results():
    result = run_pi_with_straggler(speculative=True)
    # Every logical map completed exactly once in the bookkeeping.
    assert all(t.state == "done" for t in result.tasks)
    assert result.num_maps == 8


def test_slow_node_affects_cell_backend_too():
    fast = SimulatedCluster(2).run_job(JobConf(
        name="f", workload="pi", backend=Backend.CELL_SPE_DIRECT,
        samples=4e10, num_map_tasks=4))
    slow = SimulatedCluster(2, slow_nodes={1: 4.0, 2: 4.0}).run_job(JobConf(
        name="s", workload="pi", backend=Backend.CELL_SPE_DIRECT,
        samples=4e10, num_map_tasks=4))
    assert slow.makespan_s > fast.makespan_s * 2


def test_invalid_slowdown_rejected():
    with pytest.raises(ValueError):
        SimulatedCluster(2, slow_nodes={1: 0})


# --------------------------------------------------------------------------- #
# Dynamic cluster membership (§V)                                              #
# --------------------------------------------------------------------------- #
def test_worker_joining_mid_job_takes_work():
    """A blade joining while tasks are pending gets fed by the
    JobTracker and shortens the job."""
    def run(join: bool) -> tuple[float, set]:
        sim = SimulatedCluster(2)
        conf = JobConf(name="dyn", workload="pi", backend=Backend.JAVA_PPE,
                       samples=2e10, num_map_tasks=16)
        if join:
            sim.add_worker_at(10.0)
        sim.start()
        job = sim.jobtracker.submit_job(conf)
        result = sim.env.run(job.completion)
        assert result.state is JobState.SUCCEEDED
        trackers = {t.tracker for t in result.tasks if t.kind is TaskKind.MAP}
        return result.makespan_s, trackers

    base_time, base_trackers = run(join=False)
    join_time, join_trackers = run(join=True)
    assert 3 in join_trackers  # the new blade (node id 3) ran maps
    assert 3 not in base_trackers
    assert join_time < base_time * 0.85


def test_joined_worker_serves_hdfs_writes():
    sim = SimulatedCluster(2)
    sim.start()
    tracker = sim.add_worker_now()
    assert tracker.tracker_id == 3
    assert 3 in sim.namenode.datanode_ids
    assert len(sim.cluster.workers) == 3


def test_decommission_mid_job_recovers():
    sim = SimulatedCluster(3)
    conf = JobConf(name="dec", workload="pi", backend=Backend.JAVA_PPE,
                   samples=1e10, num_map_tasks=12)
    sim.start()
    job = sim.jobtracker.submit_job(conf)

    def leave():
        yield sim.env.timeout(15.0)
        sim.decommission(3, kill_datanode=False)

    sim.env.process(leave())
    result = sim.env.run(job.completion)
    assert result.state is JobState.SUCCEEDED


# --------------------------------------------------------------------------- #
# Re-replication                                                               #
# --------------------------------------------------------------------------- #
def test_replication_manager_restores_replicas():
    sim = SimulatedCluster(4, replication_manager=True)
    sim.client.ingest_file("/in", 4 * 64 * MB, replication=2)
    sim.start()
    sim.decommission(1)  # drops that node's replicas
    sim.env.run(until=sim.env.now + 60)
    rm = sim.replication_manager
    assert rm.blocks_repaired >= 1
    assert rm.under_replicated() == []
    for block in sim.namenode.file_meta("/in").blocks:
        assert len(block.locations) == 2
        assert 1 not in block.locations


def test_replication_manager_preserves_payloads():
    sim = SimulatedCluster(3, replication_manager=True)
    payload = random_bytes(2 * 64 * MB, seed=5)
    sim.client.ingest_file("/in", len(payload), payload=payload, replication=2)
    sim.start()
    victim = sim.namenode.file_meta("/in").blocks[0].locations[0]
    sim.decommission(victim)
    sim.env.run(until=sim.env.now + 60)

    def read():
        data = yield from sim.client.read_file("/in", sim.cluster.workers[-1])
        return data

    got = sim.env.run(sim.env.process(read()))
    assert got == payload


def test_replication_manager_reports_lost_blocks():
    sim = SimulatedCluster(2, replication_manager=True)
    sim.client.ingest_file("/in", 2 * 64 * MB, replication=1)
    sim.start()
    victim = sim.namenode.file_meta("/in").blocks[0].locations[0]
    sim.decommission(victim)
    lost = sim.replication_manager.lost_blocks()
    assert len(lost) >= 1


# --------------------------------------------------------------------------- #
# Functional distributed verification                                          #
# --------------------------------------------------------------------------- #
def test_distributed_encryption_is_bit_exact():
    """End-to-end: real plaintext through HDFS blocks -> splits ->
    records -> mapper AES -> ciphertext identical to a single-pass
    reference. This closes the loop between the simulated timing stack
    and the functional kernels."""
    calib = CAL.evolve(hdfs_block_bytes=256 * 1024, record_bytes=128 * 1024)
    key, nonce = b"0123456789abcdef", b"noncenon"
    plaintext = random_bytes(2 * 1024 * 1024, seed=77)  # 2 MB, 16 records
    sim = SimulatedCluster(2, calib=calib)
    sim.ingest("/in", len(plaintext), payload=plaintext)
    conf = JobConf(
        name="verify", workload="aes", backend=Backend.CELL_SPE_DIRECT,
        input_path="/in", num_map_tasks=4, record_bytes=calib.record_bytes,
        aes_key=key, aes_nonce=nonce,
    )
    result = sim.run_job(conf)
    assert result.succeeded
    # Reassemble ciphertext in split order.
    parts = []
    for task_id in sorted(t.task_id for t in result.tasks if t.kind is TaskKind.MAP):
        out = sim.jobtracker.map_outputs[(result.job_id, task_id)]
        assert out.payload is not None
        parts.append(out.payload)
    distributed = b"".join(parts)
    reference = bytes(AES128(key).ctr_crypt(plaintext, nonce))
    assert distributed == reference


def test_functional_mode_requires_valid_key():
    with pytest.raises(ValueError):
        JobConf(name="bad", workload="aes", input_path="/x", aes_key=b"short")
    with pytest.raises(ValueError):
        JobConf(name="bad", workload="aes", input_path="/x", aes_nonce=b"tiny")
