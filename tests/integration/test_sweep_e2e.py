"""Opt-in (`-m sweep`) end-to-end exercises of the parallel sweep
driver on full paper grids — the heavy counterpart of the reduced-grid
golden tests. A CI job runs `pytest -m sweep` next to the default gate.
"""

import io

import pytest

import repro.sim.engine as engine
from repro.cli import main as cli_main
from repro.experiments import run_sweep, save_sweep

pytestmark = pytest.mark.sweep


def test_full_fig8_grid_worker_invariant():
    """The acceptance sweep: the paper's full Fig-8 grid, byte-identical
    at 1 and 4 workers, in both engine modes."""
    overrides = {"samples": 1e10}  # full node grid, one decade lighter
    serial = run_sweep("fig8", overrides, workers=1)
    parallel = run_sweep("fig8", overrides, workers=4)
    assert serial.canonical_json() == parallel.canonical_json()
    prev = engine.set_reference_mode(True)
    try:
        reference = run_sweep("fig8", overrides, workers=4)
    finally:
        engine.set_reference_mode(prev)
    assert reference.canonical_json() == serial.canonical_json()


def test_extension_scenarios_full_grids_parallel(tmp_path):
    """Every extension study — including the scheduler-comparison
    scenarios — runs its declared grid under the parallel driver and
    persists valid artifacts."""
    for name in ("hetero", "faults", "gpu", "skew", "sched_compare", "multijob"):
        result = run_sweep(name, workers=4)
        assert all(len(s) == len(result.points) for s in result.series)
        paths = save_sweep(result, tmp_path)
        assert paths["json"].exists() and paths["csv"].exists()
        again = run_sweep(name, workers=2)
        assert again.canonical_json() == result.canonical_json(), name


def test_cli_sweep_full_fig7_matches_serial(tmp_path):
    """`repro sweep fig7` end to end through the CLI, workers 4 vs 1."""
    outputs = []
    for workers in ("1", "4"):
        buf = io.StringIO()
        code = cli_main(
            ["sweep", "fig7", "--grid", "samples=3e3,3e7,3e11",
             "--workers", workers, "--out", str(tmp_path / f"w{workers}")],
            out=buf,
        )
        assert code == 0
        outputs.append(buf.getvalue())
    # The sweep-footer line differs (worker count / wall time); the
    # table, chart, summary, and sha must not.
    def strip_footer(text):
        return [ln for ln in text.splitlines()
                if not ln.startswith(("sweep fig7:", "wrote "))]
    assert strip_footer(outputs[0]) == strip_footer(outputs[1])
    j1 = (tmp_path / "w1" / "fig7.json").read_bytes()
    j4 = (tmp_path / "w4" / "fig7.json").read_bytes()
    assert j1 == j4


def test_full_fig8_grid_sharded_across_pools(tmp_path):
    """Cross-host workflow on the paper's full Fig-8 grid: 3 shards run
    independently (as three hosts would), each on its own worker pool,
    then merge byte-identically to the serial acceptance sweep."""
    from repro.experiments import merge_shards, run_shard, write_shard

    overrides = {"samples": 1e10}
    serial = run_sweep("fig8", overrides, workers=1)
    dirs = []
    for i in range(3):
        manifest = run_shard("fig8", i, 3, overrides, workers=2)
        dirs.append(write_shard(manifest, tmp_path / f"host{i}").parent)
    merged = merge_shards(dirs)
    assert merged.canonical_json() == serial.canonical_json()
    paths = save_sweep(merged, tmp_path / "merged")
    assert paths["json"].read_text() == serial.pretty_json()


def test_scale_scenario_cluster_sized_point(tmp_path):
    """`repro sweep scale` at a genuinely cluster-scale point (256
    worker blades, every policy), byte-identical across worker counts.
    The full 256/512/1024 grid is CLI territory; one 256-node point
    keeps this job inside the sweep budget while still exercising the
    event-thin protocol at 4x the paper's largest cluster."""
    serial = run_sweep("scale", {"nodes": [256]}, workers=1)
    parallel = run_sweep("scale", {"nodes": [256]}, workers=2)
    assert serial.canonical_json() == parallel.canonical_json()
    assert len(serial.series) == 4  # every placement policy
    assert all(all(y > 0 for y in s.ys) for s in serial.series)
    paths = save_sweep(serial, tmp_path)
    assert paths["json"].exists() and paths["csv"].exists()
