"""Integration tests: every figure's qualitative claims, at reduced scale.

These are the reproduction's acceptance tests — each asserts the *shape*
statements the paper makes about a figure, on configurations small
enough for the unit-test budget. The full-scale versions (exact paper
parameters) live in benchmarks/.
"""

import pytest

from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.analysis import Series, crossover_x, is_monotonic, log_slope
from repro.core import (
    raw_encryption_bandwidth,
    raw_pi_rates,
    run_empty_job,
    run_encryption_job,
    run_pi_job,
)

CAL = PAPER_CALIBRATION


# --------------------------------------------------------------------------- #
# Fig. 2 — raw node encryption                                                  #
# --------------------------------------------------------------------------- #
class TestFig2Shapes:
    @pytest.fixture(scope="class")
    def fig2(self):
        return {s.label: s for s in raw_encryption_bandwidth(sizes_mb=(1, 8, 64, 512))}

    def test_cell_plateau_near_700(self, fig2):
        assert fig2["Cell BE"].y_at(512) == pytest.approx(700, rel=0.05)

    def test_power6_near_45(self, fig2):
        assert fig2["Power 6"].y_at(512) == pytest.approx(45, rel=0.05)

    def test_ordering_at_large_sizes(self, fig2):
        order = ["Cell BE", "MapReduce Cell", "Power 6", "PPC"]
        vals = [fig2[k].y_at(512) for k in order]
        assert vals == sorted(vals, reverse=True)

    def test_mapreduce_cell_pays_considerable_overhead(self, fig2):
        assert fig2["MapReduce Cell"].y_at(512) < 0.7 * fig2["Cell BE"].y_at(512)

    def test_cell_curve_ramps_with_size(self, fig2):
        assert is_monotonic(fig2["Cell BE"].ys)
        assert fig2["Cell BE"].y_at(1) < fig2["Cell BE"].y_at(512) / 4

    def test_power6_beats_ppe_everywhere(self, fig2):
        assert all(p6 > ppc for p6, ppc in zip(fig2["Power 6"].ys, fig2["PPC"].ys))


# --------------------------------------------------------------------------- #
# Fig. 6 — raw node Pi                                                          #
# --------------------------------------------------------------------------- #
class TestFig6Shapes:
    @pytest.fixture(scope="class")
    def fig6(self):
        return {s.label: s for s in raw_pi_rates(sample_counts=(1e3, 1e5, 1e7, 1e9))}

    def test_cell_order_of_magnitude_at_large_n(self, fig6):
        assert fig6["Cell BE"].y_at(1e9) / fig6["Power 6"].y_at(1e9) >= 9

    def test_spu_init_hurts_small_problems(self, fig6):
        assert fig6["Cell BE"].y_at(1e3) < fig6["Power 6"].y_at(1e3)
        assert fig6["Cell BE"].y_at(1e3) < fig6["PPC"].y_at(1e3)

    def test_crossover_near_1e7(self, fig6):
        x = crossover_x(fig6["Cell BE"], fig6["Power 6"])
        assert x == 1e7  # "above the overhead of SPUs initialization"

    def test_rates_monotone_in_problem_size(self, fig6):
        for s in fig6.values():
            assert is_monotonic(s.ys, tol=1e-6)


# --------------------------------------------------------------------------- #
# Fig. 4 — distributed encryption, proportional (1 GB/mapper)                   #
# --------------------------------------------------------------------------- #
class TestFig4Shapes:
    @pytest.fixture(scope="class")
    def fig4(self):
        nodes = (4, 8)
        out = {}
        for backend in (Backend.JAVA_PPE, Backend.CELL_SPE_DIRECT):
            s = Series(backend.value)
            for n in nodes:
                mappers = n * CAL.mappers_per_node
                r = run_encryption_job(n, mappers * GB, backend)
                assert r.succeeded
                s.append(n, r.makespan_s)
            out[backend] = s
        return out

    def test_java_and_cell_very_similar(self, fig4):
        for n in (4, 8):
            ja = fig4[Backend.JAVA_PPE].y_at(n)
            ce = fig4[Backend.CELL_SPE_DIRECT].y_at(n)
            assert ce == pytest.approx(ja, rel=0.1)

    def test_roughly_flat_with_nodes(self, fig4):
        s = fig4[Backend.JAVA_PPE]
        assert abs(log_slope(s, 4, 8)) < 0.25

    def test_magnitude_matches_paper_window(self, fig4):
        # Paper's Fig. 4 sits between ~100 and ~160 s.
        for s in fig4.values():
            for y in s.ys:
                assert 80 < y < 200


# --------------------------------------------------------------------------- #
# Fig. 5 — distributed encryption, fixed data set                               #
# --------------------------------------------------------------------------- #
class TestFig5Shapes:
    @pytest.fixture(scope="class")
    def fig5(self):
        data = 24 * GB  # reduced from 120 GB for test budget
        nodes = (4, 8, 16)
        out = {}
        for backend in (Backend.EMPTY, Backend.JAVA_PPE, Backend.CELL_SPE_DIRECT):
            s = Series(backend.value)
            for n in nodes:
                if backend is Backend.EMPTY:
                    r = run_empty_job(n, data)
                else:
                    r = run_encryption_job(n, data, backend)
                assert r.succeeded
                s.append(n, r.makespan_s)
            out[backend] = s
        return out

    def test_runtime_scales_with_nodes(self, fig5):
        for s in fig5.values():
            assert is_monotonic(s.ys, increasing=False)
            assert log_slope(s, 4, 16) < -0.8  # near-linear on log-log

    def test_acceleration_hardly_noticed(self, fig5):
        """"the effect of hardware acceleration can be hardly noticed"."""
        for n in (4, 8, 16):
            ja = fig5[Backend.JAVA_PPE].y_at(n)
            ce = fig5[Backend.CELL_SPE_DIRECT].y_at(n)
            assert abs(ja - ce) / ja < 0.08

    def test_empty_mapper_difference_really_small(self, fig5):
        for n in (4, 8, 16):
            ja = fig5[Backend.JAVA_PPE].y_at(n)
            em = fig5[Backend.EMPTY].y_at(n)
            assert em <= ja
            assert (ja - em) / ja < 0.08


# --------------------------------------------------------------------------- #
# Fig. 7 — distributed Pi sweep at fixed nodes                                  #
# --------------------------------------------------------------------------- #
class TestFig7Shapes:
    @pytest.fixture(scope="class")
    def fig7(self):
        nodes = 10  # reduced from 50
        counts = (1e4, 1e7, 1e9, 1e11)
        out = {}
        for backend in (Backend.JAVA_PPE, Backend.CELL_SPE_DIRECT):
            s = Series(backend.value)
            for c in counts:
                r = run_pi_job(nodes, c, backend)
                assert r.succeeded
                s.append(c, r.makespan_s)
            out[backend] = s
        return out

    def test_runtime_floor_at_small_n(self, fig7):
        """Both mappers sit on the Hadoop floor for tiny problems."""
        ja, ce = fig7[Backend.JAVA_PPE], fig7[Backend.CELL_SPE_DIRECT]
        assert ja.y_at(1e4) == pytest.approx(ce.y_at(1e4), rel=0.1)
        assert ja.y_at(1e4) < 60

    def test_cell_outperforms_when_work_high_enough(self, fig7):
        ja, ce = fig7[Backend.JAVA_PPE], fig7[Backend.CELL_SPE_DIRECT]
        assert ja.y_at(1e11) / ce.y_at(1e11) > 10

    def test_java_departs_floor_before_cell(self, fig7):
        ja, ce = fig7[Backend.JAVA_PPE], fig7[Backend.CELL_SPE_DIRECT]
        floor = ja.y_at(1e4)
        # Java has clearly left the floor by 1e9; Cell has not.
        assert ja.y_at(1e9) > floor * 2
        assert ce.y_at(1e9) < floor * 1.5


# --------------------------------------------------------------------------- #
# Fig. 8 — distributed Pi scaling with nodes                                    #
# --------------------------------------------------------------------------- #
class TestFig8Shapes:
    @pytest.fixture(scope="class")
    def fig8(self):
        samples = 2e10  # reduced from 1e11
        nodes = (2, 4, 8, 16)
        out = {}
        for label, backend, mult in (
            ("java", Backend.JAVA_PPE, 1),
            ("cell", Backend.CELL_SPE_DIRECT, 1),
            ("cell10x", Backend.CELL_SPE_DIRECT, 10),
        ):
            s = Series(label)
            for n in nodes:
                r = run_pi_job(n, samples * mult, backend)
                assert r.succeeded
                s.append(n, r.makespan_s)
            out[label] = s
        return out

    def test_java_scales_linearly(self, fig8):
        assert log_slope(fig8["java"], 2, 16) == pytest.approx(-1.0, abs=0.1)

    def test_cell_one_to_two_orders_faster(self, fig8):
        for n in (2, 4, 8, 16):
            ratio = fig8["java"].y_at(n) / fig8["cell"].y_at(n)
            assert 5 < ratio < 500

    def test_cell_hits_runtime_floor(self, fig8):
        """Cell stops benefiting from nodes once the floor dominates."""
        s = fig8["cell"]
        assert log_slope(s, 8, 16) > -0.5  # clearly sub-linear by then

    def test_cell10x_keeps_scaling_longer(self, fig8):
        assert log_slope(fig8["cell10x"], 2, 8) < -0.8
        # Efficiency degrades at the high end relative to the start.
        assert log_slope(fig8["cell10x"], 8, 16) > log_slope(fig8["cell10x"], 2, 4)
