"""Tests for the GPU extension backend (§I extensibility claim)."""

import pytest

from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB
from repro.gpu import GPUDevice, GPUOffloadRuntime, TESLA_C1060
from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf
from repro.hadoop.job import JobState
from repro.sim import Environment

CAL = PAPER_CALIBRATION


# --------------------------------------------------------------------------- #
# Device + runtime                                                             #
# --------------------------------------------------------------------------- #
def make_runtime():
    env = Environment()
    dev = GPUDevice(env, 0)
    return env, dev, GPUOffloadRuntime(dev)


def test_gpu_offload_reaches_steady_state_bw():
    env, _dev, rt = make_runtime()

    def run():
        result = yield from rt.offload_bytes(1 * GB)
        return result

    result = env.run(env.process(run()))
    bw = 1 * GB / (result.elapsed_s - TESLA_C1060.context_init_s)
    assert bw == pytest.approx(rt.steady_state_bw(), rel=0.1)
    # AES-compute bound (PCIe is faster than the AES kernel).
    assert rt.steady_state_bw() == pytest.approx(TESLA_C1060.aes_bw, rel=0.05)


def test_gpu_context_init_charged_once():
    env, _dev, rt = make_runtime()

    def run(n):
        result = yield from rt.offload_bytes(n)
        return result

    r1 = env.run(env.process(run(16 * 1024 * 1024)))
    r2 = env.run(env.process(run(16 * 1024 * 1024)))
    assert r1.elapsed_s > TESLA_C1060.context_init_s
    assert r2.elapsed_s < r1.elapsed_s


def test_gpu_pi_offload():
    env, dev, rt = make_runtime()

    def run():
        result = yield from rt.offload_samples(1e9)
        return result

    result = env.run(env.process(run()))
    expected = TESLA_C1060.context_init_s + 1e9 / TESLA_C1060.pi_rate
    assert result.elapsed_s == pytest.approx(expected, rel=0.05)
    assert dev.busy_s > 0


def test_gpu_validation():
    env = Environment()
    dev = GPUDevice(env, 0)
    with pytest.raises(ValueError):
        GPUOffloadRuntime(dev, batch_bytes=0)
    rt = GPUOffloadRuntime(dev)

    def bad():
        yield from rt.offload_bytes(-1)

    env.process(bad())
    with pytest.raises(ValueError):
        env.run()


def test_gpu_kernel_launch_serializes():
    env = Environment()
    dev = GPUDevice(env, 0)
    ends = []

    def go():
        yield from dev.launch(1.0)
        ends.append(env.now)

    env.process(go())
    env.process(go())
    env.run()
    assert ends[1] >= ends[0] + 1.0


# --------------------------------------------------------------------------- #
# Cluster-level                                                                #
# --------------------------------------------------------------------------- #
def test_gpu_cluster_runs_pi_faster_than_cell():
    """Tesla pi rate (8e8) > Cell (2e8): the CPU-intensive job improves."""
    cell = SimulatedCluster(4).run_job(JobConf(
        name="c", workload="pi", backend=Backend.CELL_SPE_DIRECT,
        samples=4e11, num_map_tasks=8))
    gpu_sim = SimulatedCluster(4, accelerated_fraction=0.0, gpu_fraction=1.0)
    gpu = gpu_sim.run_job(JobConf(
        name="g", workload="pi", backend=Backend.GPU_TESLA,
        samples=4e11, num_map_tasks=8))
    assert gpu.state is JobState.SUCCEEDED
    assert gpu.makespan_s < cell.makespan_s


def test_gpu_data_job_end_to_end():
    """The paper's conclusion is accelerator-agnostic: even a 2x-faster
    AES engine cannot beat the delivery path — GPU ties with Java."""
    sim = SimulatedCluster(4, accelerated_fraction=0.0, gpu_fraction=1.0)
    sim.ingest("/in", 8 * GB)
    gpu = sim.run_job(JobConf(
        name="g", workload="aes", backend=Backend.GPU_TESLA,
        input_path="/in", num_map_tasks=8))
    sim2 = SimulatedCluster(4)
    sim2.ingest("/in", 8 * GB)
    java = sim2.run_job(JobConf(
        name="j", workload="aes", backend=Backend.JAVA_PPE,
        input_path="/in", num_map_tasks=8))
    assert gpu.state is JobState.SUCCEEDED
    assert gpu.makespan_s == pytest.approx(java.makespan_s, rel=0.1)
    assert gpu.kernel_busy_s < java.kernel_busy_s / 10


def test_gpu_backend_requires_gpu():
    sim = SimulatedCluster(2)  # cells only, no GPUs
    sim.ingest("/in", 1 * GB)
    result = sim.run_job(JobConf(
        name="nogpu", workload="aes", backend=Backend.GPU_TESLA,
        input_path="/in", num_map_tasks=4, max_attempts=2))
    assert result.state is JobState.FAILED
    assert "GPU" in result.failure_reason


def test_gpu_fallback_to_java_on_bare_nodes():
    sim = SimulatedCluster(2, gpu_fraction=0.5, accelerated_fraction=0.0)
    result = sim.run_job(JobConf(
        name="fb", workload="pi", backend=Backend.GPU_TESLA,
        fallback_backend=Backend.JAVA_PPE, samples=1e9, num_map_tasks=4))
    assert result.state is JobState.SUCCEEDED
