"""Property-based tests over the whole Hadoop runtime (hypothesis).

Random job shapes (task counts, node counts, backends, stragglers) must
always satisfy the scheduler's invariants: completion, exactly-once
accounting, conservation of work, and locality bookkeeping.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf
from repro.hadoop.job import JobState, TaskKind

CAL = PAPER_CALIBRATION


@given(
    nodes=st.integers(min_value=1, max_value=6),
    tasks_per_slot=st.integers(min_value=1, max_value=3),
    samples_exp=st.integers(min_value=6, max_value=10),
    backend=st.sampled_from([Backend.JAVA_PPE, Backend.CELL_SPE_DIRECT]),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_pi_job_always_completes_with_exact_accounting(
    nodes, tasks_per_slot, samples_exp, backend, seed
):
    """Any Pi job shape completes; every task is done exactly once; the
    sample total is conserved across the split."""
    sim = SimulatedCluster(nodes, seed=seed)
    num_maps = nodes * CAL.mappers_per_node * tasks_per_slot
    samples = float(10**samples_exp)
    conf = JobConf(
        name="prop", workload="pi", backend=backend,
        samples=samples, num_map_tasks=num_maps, num_reduce_tasks=1,
    )
    result = sim.run_job(conf)
    assert result.state is JobState.SUCCEEDED
    maps = [t for t in result.tasks if t.kind is TaskKind.MAP]
    assert len(maps) == num_maps
    assert all(t.state == "done" for t in result.tasks)
    # Work conservation: per-task sample shares sum to the total (up to
    # float division of samples/num_map_tasks).
    assert abs(sum(t.samples for t in maps) - samples) <= 1e-9 * samples
    # Temporal sanity: every completed task ran inside the job window.
    for t in result.tasks:
        assert result.submit_time <= t.start_time <= t.end_time <= result.finish_time
    # Tasks only ran on registered worker blades.
    worker_ids = {w.node_id for w in sim.cluster.workers}
    assert {t.tracker for t in result.tasks} <= worker_ids


@given(
    nodes=st.integers(min_value=1, max_value=4),
    blocks=st.integers(min_value=1, max_value=12),
    num_maps=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_encrypt_job_conserves_bytes(nodes, blocks, num_maps, seed):
    """Any split shape reads every input byte exactly once and writes an
    equal volume of ciphertext."""
    calib = CAL.evolve(hdfs_block_bytes=8 * MB, record_bytes=8 * MB)
    data = blocks * 8 * MB
    sim = SimulatedCluster(nodes, calib=calib, seed=seed)
    sim.ingest("/in", data)
    conf = JobConf(
        name="prop", workload="aes", backend=Backend.JAVA_PPE,
        input_path="/in", num_map_tasks=num_maps, record_bytes=8 * MB,
    )
    result = sim.run_job(conf)
    assert result.state is JobState.SUCCEEDED
    assert result.counters["map_input_bytes"] == data
    assert result.counters["map_output_bytes"] == data
    # Split tiling: the splits' byte ranges partition the file.
    splits = sorted(
        (t.split for t in result.tasks if t.split is not None),
        key=lambda s: s.offset,
    )
    pos = 0
    for s in splits:
        assert s.offset == pos
        pos = s.end
    assert pos == data


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=15, deadline=None)
def test_seed_only_perturbs_not_reorders_scale(seed):
    """Across seeds the makespan varies only by jitter-scale amounts."""
    sim = SimulatedCluster(2, seed=seed)
    conf = JobConf(name="j", workload="pi", backend=Backend.JAVA_PPE,
                   samples=1e9, num_map_tasks=4)
    result = sim.run_job(conf)
    assert result.state is JobState.SUCCEEDED
    # Floor + compute bounds: generous envelope, but catches runaway
    # scheduling bugs that a fixed-seed test would miss.
    assert 10 < result.makespan_s < 300
