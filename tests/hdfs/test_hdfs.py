"""Unit tests for blocks, NameNode, DataNode, and the client paths."""

import pytest

from repro.perf import PAPER_CALIBRATION
from repro.perf.calibration import MB
from repro.cluster import Network, Node, QS22_SPEC
from repro.hdfs import DataNode, HDFSClient, HDFSError, NameNode
from repro.hdfs.blocks import Block, BlockMap, FileMeta
from repro.sim import Environment
from repro.sim.rng import RandomStreams

CAL = PAPER_CALIBRATION


def make_hdfs(n_nodes=4, block_size=64 * MB, replication=1):
    env = Environment()
    net = Network(env, CAL)
    nn = NameNode(env, block_size=block_size, replication=replication, rng=RandomStreams(1))
    nodes = []
    for i in range(n_nodes):
        node = Node(env, i + 1, QS22_SPEC, CAL)
        net.attach(node)
        nn.register_datanode(DataNode(node, net))
        nodes.append(node)
    return env, net, nn, HDFSClient(nn), nodes


# --------------------------------------------------------------------------- #
# Blocks / FileMeta                                                             #
# --------------------------------------------------------------------------- #
def test_filemeta_blocks_for_range():
    meta = FileMeta(path="/f", size=300, block_size=100)
    meta.blocks = [Block(i, "/f", i, 100) for i in range(3)]
    assert [b.index for b in meta.blocks_for_range(0, 100)] == [0]
    assert [b.index for b in meta.blocks_for_range(50, 100)] == [0, 1]
    assert [b.index for b in meta.blocks_for_range(100, 200)] == [1, 2]
    assert meta.blocks_for_range(0, 0) == []
    with pytest.raises(ValueError):
        meta.blocks_for_range(-1, 10)


def test_blockmap_remove_node():
    bm = BlockMap()
    b = Block(1, "/f", 0, 10)
    bm.add(b, 3)
    bm.add(b, 5)
    assert b.locations == [3, 5]
    affected = bm.remove_node(3)
    assert affected == [b]
    assert b.locations == [5]
    assert len(bm.blocks_on(3)) == 0


# --------------------------------------------------------------------------- #
# NameNode                                                                      #
# --------------------------------------------------------------------------- #
def test_allocate_splits_into_blocks():
    _env, _net, nn, client, _nodes = make_hdfs()
    meta = client.ingest_file("/data", 200 * MB)
    assert [b.size for b in meta.blocks] == [64 * MB, 64 * MB, 64 * MB, 8 * MB]
    assert all(len(b.locations) == 1 for b in meta.blocks)


def test_contiguous_placement_clusters_blocks():
    _env, _net, nn, client, _nodes = make_hdfs(n_nodes=4)
    meta = client.ingest_file("/data", 16 * 64 * MB, placement="contiguous")
    homes = [b.locations[0] for b in meta.blocks]
    # 16 blocks over 4 nodes: 4 contiguous runs.
    runs = 1 + sum(1 for a, b in zip(homes, homes[1:]) if a != b)
    assert runs == 4
    assert len(set(homes)) == 4


def test_roundrobin_placement_spreads_blocks():
    _env, _net, nn, client, _nodes = make_hdfs(n_nodes=4)
    meta = client.ingest_file("/data", 8 * 64 * MB, placement="roundrobin")
    homes = [b.locations[0] for b in meta.blocks]
    assert len(set(homes)) == 4  # all nodes hold something


def test_replication_places_distinct_replicas():
    _env, _net, nn, client, _nodes = make_hdfs(n_nodes=4, replication=3)
    meta = client.ingest_file("/data", 64 * MB, replication=3)
    locs = meta.blocks[0].locations
    assert len(locs) == 3
    assert len(set(locs)) == 3


def test_replication_exceeding_nodes_rejected():
    _env, _net, nn, client, _nodes = make_hdfs(n_nodes=2)
    with pytest.raises(HDFSError):
        client.ingest_file("/data", 64 * MB, replication=5)


def test_duplicate_path_rejected():
    _env, _net, nn, client, _nodes = make_hdfs()
    client.ingest_file("/data", MB)
    with pytest.raises(HDFSError):
        client.ingest_file("/data", MB)


def test_missing_file_raises():
    _env, _net, nn, _client, _nodes = make_hdfs()
    with pytest.raises(HDFSError):
        nn.file_meta("/ghost")


def test_delete_removes_blocks_everywhere():
    _env, _net, nn, client, _nodes = make_hdfs()
    meta = client.ingest_file("/data", 128 * MB)
    block_ids = [b.block_id for b in meta.blocks]
    nn.delete("/data")
    assert not nn.exists("/data")
    for node_id in nn.datanode_ids:
        dn = nn.datanode(node_id)
        assert not any(dn.has_block(bid) for bid in block_ids)


def test_datanode_failure_degrades_blocks():
    _env, _net, nn, client, _nodes = make_hdfs(n_nodes=3)
    meta = client.ingest_file("/data", 3 * 64 * MB, placement="contiguous")
    victim = meta.blocks[0].locations[0]
    affected = nn.handle_datanode_failure(victim)
    assert any(not b.locations for b in affected)
    assert victim not in nn.datanode_ids


def test_locate_returns_ranged_blocks():
    _env, _net, nn, client, _nodes = make_hdfs()
    client.ingest_file("/data", 200 * MB)
    blocks = nn.locate("/data", offset=70 * MB, length=10 * MB)
    assert [b.index for b in blocks] == [1]


# --------------------------------------------------------------------------- #
# DataNode serving & client reads                                               #
# --------------------------------------------------------------------------- #
def test_local_read_uses_loopback():
    env, net, nn, client, nodes = make_hdfs(n_nodes=2)
    meta = client.ingest_file("/data", 64 * MB, placement="contiguous")
    block = meta.blocks[0]
    reader = next(n for n in nodes if n.node_id == block.locations[0])

    def go():
        yield from client.read_block(block, reader)

    env.process(go())
    env.run()
    assert net.local_bytes == 64 * MB
    assert nn.datanode(reader.node_id).reads_local == 1


def test_remote_read_crosses_network():
    env, net, nn, client, nodes = make_hdfs(n_nodes=2)
    meta = client.ingest_file("/data", 64 * MB, placement="contiguous")
    block = meta.blocks[0]
    reader = next(n for n in nodes if n.node_id != block.locations[0])

    def go():
        yield from client.read_block(block, reader)

    env.process(go())
    env.run()
    assert net.remote_bytes == 64 * MB


def test_payload_roundtrip_through_blocks():
    env, _net, nn, client, nodes = make_hdfs(block_size=1024)
    payload = bytes(range(256)) * 10  # 2560 bytes -> 3 blocks
    client.ingest_file("/data", len(payload), payload=payload)

    def go():
        data = yield from client.read_file("/data", nodes[0])
        return data

    got = env.run(env.process(go()))
    assert got == payload


def test_write_file_places_first_replica_on_writer():
    env, _net, nn, client, nodes = make_hdfs(n_nodes=3)

    def go():
        meta = yield from client.write_file("/out", 64 * MB, nodes[1])
        return meta

    meta = env.run(env.process(go()))
    assert meta.blocks[0].locations[0] == nodes[1].node_id
    assert env.now > 0  # transfer + disk time was charged


def test_read_block_truncated_length():
    env, _net, nn, client, nodes = make_hdfs(block_size=1024)
    payload = b"x" * 1024
    meta = client.ingest_file("/data", 1024, payload=payload)

    def go():
        data = yield from client.read_block(meta.blocks[0], nodes[0], length=100)
        return data

    got = env.run(env.process(go()))
    assert got == payload[:100]


def test_choose_replica_prefers_local():
    _env, _net, nn, client, nodes = make_hdfs(n_nodes=3, replication=2)
    meta = client.ingest_file("/data", 64 * MB, replication=2)
    block = meta.blocks[0]
    local_reader = next(n for n in nodes if n.node_id in block.locations)
    assert client.choose_replica(block, local_reader) == local_reader.node_id


def test_read_with_no_replicas_fails():
    env, _net, nn, client, nodes = make_hdfs(n_nodes=2)
    meta = client.ingest_file("/data", 64 * MB)
    nn.handle_datanode_failure(meta.blocks[0].locations[0])

    def go():
        yield from client.read_block(meta.blocks[0], nodes[0])

    env.process(go())
    with pytest.raises(HDFSError):
        env.run()


def test_datanode_stream_limit_serializes():
    env, _net, nn, client, nodes = make_hdfs(n_nodes=2)
    # Rebuild a datanode with max_streams=1 to observe serialization.
    node = nodes[0]
    dn = nn.datanode(node.node_id)
    dn._streams.capacity = 1
    meta = client.ingest_file("/data", 128 * MB, placement="contiguous")
    blocks = [b for b in meta.blocks if b.locations[0] == node.node_id]
    if len(blocks) < 2:
        pytest.skip("placement did not co-locate two blocks")
    ends = []

    def go(b):
        yield from dn.serve_block(b, node)
        ends.append(env.now)

    for b in blocks[:2]:
        env.process(go(b))
    env.run()
    assert ends[1] >= ends[0] * 1.9
