"""Property-based tests for HDFS block management (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import PAPER_CALIBRATION
from repro.cluster import Network, Node, QS22_SPEC
from repro.hdfs import DataNode, HDFSClient, NameNode
from repro.sim import Environment
from repro.sim.rng import RandomStreams

CAL = PAPER_CALIBRATION


def make_hdfs(n_nodes, block_size):
    env = Environment()
    net = Network(env, CAL)
    nn = NameNode(env, block_size=block_size, rng=RandomStreams(11))
    for i in range(n_nodes):
        node = Node(env, i + 1, QS22_SPEC, CAL)
        net.attach(node)
        nn.register_datanode(DataNode(node, net))
    return nn, HDFSClient(nn)


@given(
    size=st.integers(min_value=0, max_value=20_000),
    block_size=st.integers(min_value=16, max_value=4096),
    n_nodes=st.integers(min_value=1, max_value=6),
    placement=st.sampled_from(["roundrobin", "contiguous"]),
)
@settings(max_examples=50, deadline=None)
def test_block_allocation_invariants(size, block_size, n_nodes, placement):
    """For any file shape and placement policy: block sizes tile the
    file exactly, only the final block is short, every replica lives on
    a registered DataNode, and the reverse index agrees."""
    nn, client = make_hdfs(n_nodes, block_size)
    meta = client.ingest_file("/f", size, placement=placement)
    assert sum(b.size for b in meta.blocks) == size
    for b in meta.blocks[:-1]:
        assert b.size == block_size
    if meta.blocks:
        assert 0 < meta.blocks[-1].size <= block_size
    for b in meta.blocks:
        assert len(b.locations) == 1
        for nid in b.locations:
            assert nid in nn.datanode_ids
            assert nn.datanode(nid).has_block(b.block_id)
            assert b.block_id in {
                blk.block_id for blk in nn.block_map.blocks_on(nid)
            }


@given(
    size=st.integers(min_value=1, max_value=20_000),
    block_size=st.integers(min_value=16, max_value=2048),
    replication=st.integers(min_value=1, max_value=4),
    n_nodes=st.integers(min_value=4, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_replicas_always_distinct_nodes(size, block_size, replication, n_nodes):
    nn, client = make_hdfs(n_nodes, block_size)
    meta = client.ingest_file("/f", size, replication=replication)
    for b in meta.blocks:
        assert len(b.locations) == replication
        assert len(set(b.locations)) == replication


@given(
    payload_len=st.integers(min_value=0, max_value=5_000),
    block_size=st.integers(min_value=32, max_value=512),
)
@settings(max_examples=30, deadline=None)
def test_payload_roundtrip_property(payload_len, block_size):
    """Any payload sliced into any block size reads back identically."""
    import numpy as np

    payload = np.random.default_rng(payload_len).integers(
        0, 256, payload_len, dtype=np.uint8
    ).tobytes()
    nn, client = make_hdfs(3, block_size)
    client.ingest_file("/f", payload_len, payload=payload)
    env = nn.env
    reader = nn.datanode(nn.datanode_ids[0]).node

    def read():
        data = yield from client.read_file("/f", reader)
        return data

    got = env.run(env.process(read()))
    if payload_len == 0:
        assert got is None
    else:
        assert got == payload


@given(
    kill_order=st.permutations([1, 2, 3]),
)
@settings(max_examples=10, deadline=None)
def test_failures_never_corrupt_surviving_replicas(kill_order):
    """Killing DataNodes in any order leaves consistent metadata."""
    nn, client = make_hdfs(4, 256)
    meta = client.ingest_file("/f", 4096, replication=2)
    for victim in kill_order:
        nn.handle_datanode_failure(victim)
        for b in meta.blocks:
            assert victim not in b.locations
            for nid in b.locations:
                assert nid in nn.datanode_ids
                assert nn.datanode(nid).has_block(b.block_id)
