"""Request coalescing: the daemon's core correctness feature.

K identical concurrent submits must execute the grid exactly once and
hand every client byte-identical payloads, themselves byte-identical
to what the offline `repro sweep` path produces — across both engine
modes and both model-protocol modes.
"""

import json
import threading

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.experiments import run_sweep
from repro.serve import protocol, request_one, request_stream


def concurrent_submits(address, requests):
    """Fire all requests at once; returns each connection's event list."""
    results = [None] * len(requests)
    barrier = threading.Barrier(len(requests))

    def worker(i, req):
        barrier.wait()
        results[i] = list(request_stream(address, req))

    threads = [threading.Thread(target=worker, args=(i, r))
               for i, r in enumerate(requests)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert all(r is not None for r in results), "a submit never finished"
    return results


def test_eight_identical_submits_execute_once(server, address):
    offline = run_sweep("_serve_slow", seed=1234, workers=1)
    req = protocol.submit_request("_serve_slow", seed=1234)
    results = concurrent_submits(address, [dict(req) for _ in range(8)])

    job_ids = {evs[0]["job"] for evs in results}
    coalesced = sum(evs[0]["coalesced"] for evs in results)
    assert len(job_ids) == 1, f"expected one job, got {job_ids}"
    assert coalesced == 7  # first created, seven attached

    payloads = {evs[-1]["payload"] for evs in results}
    shas = {evs[-1]["sha256"] for evs in results}
    assert len(payloads) == 1 and len(shas) == 1
    assert payloads.pop() == offline.pretty_json()
    assert shas.pop() == offline.sha256()

    # The executed-points accounting proves the grid ran exactly once:
    # every client's result reports the same single execution, and the
    # daemon's global counter saw exactly one grid's worth of points.
    for evs in results:
        assert evs[-1]["executed_points"] == 8
        assert evs[-1]["cached_points"] == 0
    stats = request_one(address, {"verb": "status"})["stats"]
    assert stats["points_executed"] == 8
    assert stats["coalesced_submits"] == 7
    assert stats["jobs"] == 1


def test_interleaved_distinct_requests_do_not_cross_coalesce(server, address):
    """Identical pairs coalesce with each other, never across seeds."""
    reqs = [protocol.submit_request("_serve_slow", seed=s)
            for s in (1, 1, 2, 2)]
    results = concurrent_submits(address, reqs)
    by_seed = {}
    for req, evs in zip(reqs, results):
        by_seed.setdefault(req["seed"], []).append(evs)
    jobs = {}
    for seed, pair in by_seed.items():
        ids = {evs[0]["job"] for evs in pair}
        assert len(ids) == 1  # the pair shares a job...
        jobs[seed] = ids.pop()
        payloads = {evs[-1]["payload"] for evs in pair}
        assert len(payloads) == 1
        offline = run_sweep("_serve_slow", seed=seed, workers=1)
        assert payloads.pop() == offline.pretty_json()
    assert jobs[1] != jobs[2]  # ...and the seeds never share one
    stats = request_one(address, {"verb": "status"})["stats"]
    assert stats["points_executed"] == 16  # two grids, once each
    assert stats["coalesced_submits"] == 2


def test_mode_combinations_coalesce_and_match_offline(server, address):
    """All four engine×model reference combinations, each submitted
    twice concurrently: one execution per combination, byte-identical
    to an offline sweep run under those process-global modes. One
    daemon serves every combination without touching its own globals."""
    overrides = {"nodes": [2, 4], "samples": 1e9}
    sha_by_combo = {}
    for ref_engine in (False, True):
        for ref_model in (False, True):
            prev = engine.set_reference_mode(ref_engine)
            prev_model = modelmode.set_model_reference(ref_model)
            try:
                offline = run_sweep("fig8", overrides, seed=1234, workers=1)
            finally:
                engine.set_reference_mode(prev)
                modelmode.set_model_reference(prev_model)
            req = protocol.submit_request(
                "fig8", overrides, seed=1234,
                reference_engine=ref_engine, reference_model=ref_model,
            )
            results = concurrent_submits(address, [dict(req), dict(req)])
            assert {evs[0]["job"] for evs in results} and \
                sum(evs[0]["coalesced"] for evs in results) == 1
            for evs in results:
                term = evs[-1]
                assert term["event"] == "result", term
                assert term["payload"] == offline.pretty_json(), (
                    f"served bytes diverge offline at "
                    f"engine_ref={ref_engine} model_ref={ref_model}"
                )
                assert term["sha256"] == offline.sha256()
            sha_by_combo[(ref_engine, ref_model)] = offline.sha256()
    # The reference engine is *supposed* to agree with the fast engine
    # byte for byte; the model-protocol modes are distinct computations.
    for ref_model in (False, True):
        assert sha_by_combo[(False, ref_model)] == sha_by_combo[(True, ref_model)]
    assert sha_by_combo[(False, False)] != sha_by_combo[(False, True)]


def test_payload_is_the_canonical_result_document(server, address):
    """The served payload parses back into the same canonical dict the
    offline result produces — the wire adds nothing and loses nothing."""
    offline = run_sweep("_serve_synth", seed=42, workers=1)
    evs = list(request_stream(
        address, protocol.submit_request("_serve_synth", seed=42)))
    doc = json.loads(evs[-1]["payload"])
    assert doc == offline.canonical_dict()
