"""`repro submit --retries/--backoff`: surviving an unreachable daemon.

Submits are idempotent (identical requests coalesce, finished requests
hit the whole-sweep cache), so a client is always safe to retry — these
tests pin the retry schedule (jittered exponential backoff), the exit
code split (4 = unreachable, distinct from 1 failed / 2 usage / 3
cancelled), and the recovery path where a daemon appears between
attempts.
"""

import io
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.serve import Address, ReproServer, retry_delays, wait_for_server


def test_retry_delays_are_exponential_with_jitter():
    # rng pinned at 0.5 makes the jitter factor exactly 1.0.
    assert list(retry_delays(3, 1.0, rng=lambda: 0.5)) == [1.0, 2.0, 4.0]
    assert list(retry_delays(0, 1.0)) == []
    for delay, base in zip(retry_delays(4, 0.5), [0.5, 1.0, 2.0, 4.0]):
        assert 0.5 * base <= delay < 1.5 * base


def test_retry_delays_reject_negative_arguments():
    with pytest.raises(ValueError):
        list(retry_delays(-1, 1.0))
    with pytest.raises(ValueError):
        list(retry_delays(1, -0.5))


def test_exhausted_retries_exit_4(tmp_path):
    buf = io.StringIO()
    code = cli_main(
        ["submit", "_serve_synth", "--socket", str(tmp_path / "none.sock"),
         "--retries", "2", "--backoff", "0.01"], out=buf)
    text = buf.getvalue()
    assert code == 4
    assert "retry 1/2" in text and "retry 2/2" in text
    assert "after 2 retries" in text


def test_negative_retry_flags_are_usage_errors(tmp_path):
    buf = io.StringIO()
    code = cli_main(
        ["submit", "_serve_synth", "--socket", str(tmp_path / "none.sock"),
         "--retries", "-1"], out=buf)
    assert code == 2


def test_retries_bridge_a_late_daemon(tmp_path):
    """The daemon boots *after* the first submit attempt fails; the
    retry loop must pick it up and serve the sweep normally."""
    sock = tmp_path / "late.sock"
    servers = []

    def boot():
        time.sleep(0.4)
        srv = ReproServer(socket_path=sock, workers=2)
        srv.start()
        servers.append(srv)

    t = threading.Thread(target=boot, daemon=True)
    t.start()
    try:
        buf = io.StringIO()
        code = cli_main(
            ["submit", "_serve_synth", "--socket", str(sock),
             "--retries", "10", "--backoff", "0.1"], out=buf)
        text = buf.getvalue()
        assert code == 0, text
        assert "retry 1/10" in text  # at least one attempt failed
        assert "sha256" in text      # and the served result arrived
    finally:
        t.join(timeout=10)
        for srv in servers:
            srv.close()


def test_unreachable_control_verbs_exit_4(tmp_path):
    buf = io.StringIO()
    code = cli_main(
        ["submit", "--status", "--socket", str(tmp_path / "none.sock")],
        out=buf)
    assert code == 4 and "cannot reach daemon" in buf.getvalue()
