"""Abandoned-job reaping: a disconnect without a cancel must expire
the job's lease, while coalesced survivors keep the job alive.

A client that vanishes mid-stream used to leave its job running to
completion no matter what — harmless for short grids, a capacity leak
for long ones. The daemon now cancels a running job once every
streaming client has been gone for ``abandon_timeout_s``. Detached
submits and jobs with any remaining coalesced subscriber are exempt.
"""

import threading
import time

from repro.serve import Address, ReproServer, protocol, request_stream
from repro.serve.client import connect


def _submit_and_abandon(srv, overrides):
    """Open a raw connection, submit ``_serve_slow``, read the accepted
    event, then drop the socket without cancelling. Returns the job."""
    address = Address(socket_path=srv.socket_path)
    sock = connect(address)
    stream = sock.makefile("rwb")
    stream.write(protocol.encode(
        protocol.submit_request("_serve_slow", overrides)))
    stream.flush()
    accepted = protocol.decode(stream.readline())
    assert accepted["event"] == "accepted"
    sock.close()  # vanish: no cancel, no clean goodbye
    job = srv.table.get(accepted["job"])
    assert job is not None
    return job


def _wait_for(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def test_abandoned_job_is_reaped(tmp_path):
    srv = ReproServer(socket_path=tmp_path / "reap.sock", workers=2,
                      abandon_timeout_s=0.2)
    srv.start()
    try:
        # 12 points x 0.25s on 2 workers = ~1.5s of work: plenty of
        # runway for the ~0.5s disconnect-then-reap sequence to land
        # before the job could finish on its own.
        job = _submit_and_abandon(
            srv, {"k": list(range(12)), "delay_s": 0.25})
        assert _wait_for(lambda: job.state == "cancelled"), (
            f"job was never reaped (state={job.state})")
        assert "repro_serve_jobs_reaped_total 1" in srv.render_metrics()
    finally:
        srv.close()


def test_coalesced_survivor_keeps_job_alive(tmp_path):
    srv = ReproServer(socket_path=tmp_path / "survive.sock", workers=2,
                      abandon_timeout_s=0.2)
    srv.start()
    try:
        address = Address(socket_path=srv.socket_path)
        overrides = {"k": list(range(8)), "delay_s": 0.2}

        # Survivor client: coalesces onto the same job and stays
        # attached to the bitter end, collecting every event.
        survivor_events = []

        def survive():
            for event in request_stream(
                    address,
                    protocol.submit_request("_serve_slow", overrides)):
                survivor_events.append(event)

        job = _submit_and_abandon(srv, overrides)
        t = threading.Thread(target=survive, daemon=True)
        t.start()
        t.join(timeout=30)
        assert not t.is_alive()

        terminal = survivor_events[-1]
        assert terminal["event"] == "result", (
            "the survivor's job was reaped out from under it: "
            f"{terminal}")
        assert job.state == "done"
        assert srv._m_reaped.value() == 0  # noqa: SLF001
    finally:
        srv.close()
