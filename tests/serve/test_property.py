"""Property test: random request mixes against a live daemon.

Hypothesis draws a batch of submits — random scenario, grid subset,
seed, engine/model mode combination, duplicates encouraged, some
cancelled right after admission — fires them concurrently, and checks
that every result the daemon serves is byte-identical to a memoized
serial offline `run_sweep` under the same process-global modes. A
cancelled submit may legitimately land as either `cancelled` or `done`
(the cancel can lose the race to a fast grid); when it lands `done`
its bytes must still match offline exactly.
"""

import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.modelmode as modelmode
import repro.sim.engine as engine
import pytest

from repro.experiments import run_sweep
from repro.serve import Address, ReproServer, protocol, request_one, request_stream

#: (scenario, allowed grid subsets) — small fig8 grids exercise the
#: real simulation under every mode; the synthetic scenario exercises
#: wide-and-cheap fan-out.
SCENARIOS = {
    "_serve_synth": ("k", [[0, 1, 2], [0, 1, 2, 3, 4, 5]]),
    "fig8": ("nodes", [[2], [2, 4]]),
}

request_strategy = st.fixed_dictionaries({
    "scenario": st.sampled_from(sorted(SCENARIOS)),
    "grid_choice": st.integers(min_value=0, max_value=1),
    "seed": st.sampled_from([1, 2]),
    "reference_engine": st.booleans(),
    "reference_model": st.booleans(),
    "cancel": st.booleans(),
})


@pytest.fixture(scope="module")
def prop_server(tmp_path_factory):
    sock = tmp_path_factory.mktemp("serve") / "prop.sock"
    srv = ReproServer(socket_path=sock, workers=2).start()
    try:
        yield srv
    finally:
        srv.close()


_offline_memo: dict = {}


def offline_bytes(spec) -> tuple[str, dict]:
    """Serial, in-process reference run under the spec's global modes
    (memoized — identical specs across examples pay once)."""
    scenario = spec["scenario"]
    param, choices = SCENARIOS[scenario]
    grid = choices[spec["grid_choice"]]
    key = (scenario, param, tuple(grid), spec["seed"],
           spec["reference_engine"], spec["reference_model"])
    if key not in _offline_memo:
        prev = engine.set_reference_mode(spec["reference_engine"])
        prev_model = modelmode.set_model_reference(spec["reference_model"])
        try:
            result = run_sweep(scenario, {param: grid},
                               seed=spec["seed"], workers=1)
        finally:
            engine.set_reference_mode(prev)
            modelmode.set_model_reference(prev_model)
        _offline_memo[key] = result.pretty_json()
    overrides = {param: grid}
    return _offline_memo[key], overrides


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(specs=st.lists(request_strategy, min_size=1, max_size=4))
def test_random_interleavings_serve_offline_bytes(prop_server, specs):
    address = Address(socket_path=prop_server.socket_path)
    expected = []
    requests = []
    for spec in specs:
        payload, overrides = offline_bytes(spec)
        expected.append(payload)
        requests.append(protocol.submit_request(
            spec["scenario"], overrides, seed=spec["seed"],
            reference_engine=spec["reference_engine"],
            reference_model=spec["reference_model"],
            detach=spec["cancel"],
        ))

    outcomes = [None] * len(specs)
    barrier = threading.Barrier(len(specs))

    def streamer(i):
        barrier.wait()
        events = list(request_stream(address, requests[i]))
        outcomes[i] = ("stream", events)

    def cancel_after_submit(i):
        barrier.wait()
        acc = request_one(address, requests[i])
        assert acc["event"] == "accepted", acc
        request_one(address, {"verb": "cancel", "job": acc["job"]})
        outcomes[i] = ("detached", acc["job"])

    threads = [
        threading.Thread(
            target=cancel_after_submit if specs[i]["cancel"] else streamer,
            args=(i,),
        )
        for i in range(len(specs))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert all(o is not None for o in outcomes), "a request never finished"

    def logical_key(spec):
        return (spec["scenario"], spec["grid_choice"], spec["seed"],
                spec["reference_engine"], spec["reference_model"])

    cancelled_keys = {logical_key(s) for s in specs if s["cancel"]}

    for i, (kind, data) in enumerate(outcomes):
        if kind == "stream":
            term = data[-1]
            if (term["event"] == "cancelled"
                    and logical_key(specs[i]) in cancelled_keys):
                # This submit coalesced with a duplicate that was
                # cancelled: losing the shared job is correct behavior.
                continue
            assert term["event"] == "result", term
            assert term["payload"] == expected[i], (
                f"served bytes diverge from serial offline run for {specs[i]}"
            )
        else:
            # Cancelled submits settle as cancelled OR done (the cancel
            # may lose to a fast grid, or the key may be shared with an
            # uncancelled duplicate); done must still serve exact bytes.
            row = _wait_terminal(address, data)
            assert row["state"] in ("cancelled", "done"), row
            if row["state"] == "done":
                assert row["payload"] == expected[i]


def _wait_terminal(address, job_id, timeout=60.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        row = request_one(address, {"verb": "status", "job": job_id})["jobs"][0]
        if row["state"] in ("done", "cancelled", "failed"):
            return row
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached a terminal state")
