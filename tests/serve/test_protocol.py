"""Wire-format validation and the job table's status/cancel protocol.

Everything here is socket-free: the protocol functions are pure, and
the job table runs against an injected fake clock, so these tests pin
the admission/coalescing/cancel semantics deterministically — no
sleeps, no daemon, no pool.
"""

import io
from types import SimpleNamespace

import pytest

from repro.serve import JobRequest, JobTable
from repro.serve import jobs as jobs_mod
from repro.serve import protocol


# -- framing -----------------------------------------------------------------

def test_encode_decode_roundtrip():
    msg = {"verb": "submit", "scenario": "fig8", "overrides": {"nodes": [2, 4]}}
    line = protocol.encode(msg)
    assert line.endswith(b"\n") and b"\n" not in line[:-1]
    assert protocol.decode(line) == msg


def test_decode_rejects_garbage_and_non_objects():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"{ not json\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"[1, 2, 3]\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b'"just a string"\n')


def test_read_events_skips_blank_lines():
    stream = io.BytesIO(b'{"event":"a"}\n\n{"event":"b"}\n')
    assert [e["event"] for e in protocol.read_events(stream)] == ["a", "b"]


# -- request validation ------------------------------------------------------

def test_parse_request_rejects_unknown_verbs():
    for bad in ({}, {"verb": "run"}, {"verb": 7}):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request(bad)


def test_parse_submit_shape_errors():
    ok = protocol.parse_request(protocol.submit_request("fig8", {"nodes": [2]}))
    assert ok["scenario"] == "fig8" and ok["overrides"] == {"nodes": [2]}
    for bad in (
        {"verb": "submit"},  # no scenario
        {"verb": "submit", "scenario": ""},
        {"verb": "submit", "scenario": "fig8", "overrides": [1]},
        {"verb": "submit", "scenario": "fig8", "seed": "abc"},
        {"verb": "submit", "scenario": "fig8", "reference_engine": "yes"},
        {"verb": "submit", "scenario": "fig8", "detach": 1},
    ):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request(bad)


def test_parse_cancel_status_shutdown():
    assert protocol.parse_request({"verb": "cancel", "job": "j1"})["job"] == "j1"
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_request({"verb": "cancel"})
    assert protocol.parse_request({"verb": "status"})["job"] is None
    assert protocol.parse_request({"verb": "status", "job": "j1"})["job"] == "j1"
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_request({"verb": "status", "job": ""})
    assert protocol.parse_request({"verb": "shutdown"})["mode"] == "graceful"
    assert protocol.parse_request(
        {"verb": "shutdown", "mode": "now"})["mode"] == "now"
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_request({"verb": "shutdown", "mode": "later"})


# -- job table against a fake clock ------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def table(clock):
    return JobTable(clock=clock)


REQ = JobRequest(scenario="_serve_synth", seed=1)


def test_identical_requests_coalesce(table):
    job, created = table.admit(REQ)
    again, created2 = table.admit(JobRequest(scenario="_serve_synth", seed=1))
    assert created and not created2
    assert again is job
    assert job.clients == 2
    assert table.coalesced_submits == 1
    assert len(table) == 1


def test_different_requests_get_distinct_jobs(table):
    base, _ = table.admit(REQ)
    for other in (
        JobRequest(scenario="_serve_synth", seed=2),
        JobRequest(scenario="_serve_synth", seed=1, overrides={"k": [0, 1]}),
        JobRequest(scenario="_serve_synth", seed=1, reference_engine=True),
        JobRequest(scenario="_serve_synth", seed=1, reference_model=True),
    ):
        job, created = table.admit(other)
        assert created and job is not base and job.key != base.key


def test_admit_rejects_unknown_scenario_and_bad_grid(table):
    with pytest.raises(KeyError):
        table.admit(JobRequest(scenario="_no_such_scenario"))
    from repro.experiments import GridError

    with pytest.raises(GridError):
        table.admit(JobRequest(scenario="_serve_synth",
                               overrides={"bogus_param": [1]}))
    assert len(table) == 0  # nothing half-admitted


def test_queued_cancel_is_immediate_and_releases_the_key(table):
    job, _ = table.admit(REQ)
    ok, state = table.cancel(job.id)
    assert ok and state == jobs_mod.CANCELLED
    assert job.state == jobs_mod.CANCELLED
    # The key is free again: an identical submit starts a fresh job.
    fresh, created = table.admit(REQ)
    assert created and fresh is not job


def test_running_cancel_reports_cancelling_until_confirmed(table):
    job, _ = table.admit(REQ)
    assert job.mark_running()
    ok, state = table.cancel(job.id)
    assert ok and state == "cancelling"
    assert job.cancelled and job.state == jobs_mod.RUNNING
    job.finish_cancelled()
    assert job.state == jobs_mod.CANCELLED
    # Cancelling again is idempotent and reports the terminal state.
    ok, state = table.cancel(job.id)
    assert ok and state == jobs_mod.CANCELLED


def test_cancel_unknown_job(table):
    ok, state = table.cancel("job-999999")
    assert not ok and "unknown job" in state


def test_cancel_loses_race_to_running(table):
    """The executor claimed the job first: cancel must not pretend the
    job died instantly, and mark_running after a cancel must refuse."""
    job, _ = table.admit(REQ)
    assert job.mark_running()
    assert table.cancel(job.id) == (True, "cancelling")
    job2, _ = table.admit(JobRequest(scenario="_serve_synth", seed=7))
    assert job2.cancel() == jobs_mod.CANCELLED  # queued: dies on the spot
    assert not job2.mark_running()  # the executor must stand down


def test_snapshot_ages_with_the_clock(table, clock):
    job, _ = table.admit(REQ)
    clock.now += 4.0
    assert job.snapshot()["age_s"] == 4.0
    job.mark_running()
    clock.now += 2.5
    row = job.snapshot()
    assert row["age_s"] == 6.5 and row["runtime_s"] == 2.5
    job.finish_failed("boom")
    clock.now += 50.0
    row = job.snapshot()
    assert row["runtime_s"] == 2.5  # frozen at finish, not still ticking
    assert row["state"] == jobs_mod.FAILED and row["error"] == "boom"


def test_done_lifecycle_and_terminal_replay(table):
    job, _ = table.admit(REQ)
    live = job.subscribe()
    job.mark_running()
    job.publish_point(0, {"k": 0}, {"y": 1.0})
    result = SimpleNamespace(executed_points=6, cached_points=0)
    job.finish_done(result, payload='{"x": 1}\n', sha256="ab" * 32)
    events = [live.get_nowait() for _ in range(2)]
    assert [e["event"] for e in events] == ["point", "result"]
    assert events[1]["payload"] == '{"x": 1}\n'
    # A late subscriber (coalesced client, detached reattach) gets the
    # terminal event replayed immediately instead of hanging.
    late = job.subscribe()
    replay = late.get_nowait()
    assert replay["event"] == "result" and replay["sha256"] == "ab" * 32
    assert job.snapshot()["done"] == job.total


def test_finished_job_releases_key_but_keeps_status_row(table):
    job, _ = table.admit(REQ)
    job.mark_running()
    job.finish_done(SimpleNamespace(executed_points=6, cached_points=0),
                    "{}\n", "cd" * 32)
    table.release(job)
    fresh, created = table.admit(REQ)
    assert created and fresh is not job
    assert len(table) == 2  # both rows remain queryable
    assert table.get(job.id) is job
    states = {r["job"]: r["state"] for r in table.rows()}
    assert states[job.id] == jobs_mod.DONE
    assert states[fresh.id] == jobs_mod.QUEUED


def test_stale_release_never_evicts_a_newer_job(table):
    job, _ = table.admit(REQ)
    table.release(job)
    newer, _ = table.admit(REQ)
    table.release(job)  # stale: must not evict `newer`
    attached, created = table.admit(REQ)
    assert not created and attached is newer
