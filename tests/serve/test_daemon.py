"""End-to-end daemon lifecycle over a real unix socket.

Boot → ping → concurrent submits → mid-flight cancel from a second
connection → graceful shutdown with no orphaned pool processes. The
CLI-level test at the bottom drives the exact `repro serve` / `repro
submit` entry points (including on-disk byte identity with `repro
sweep --out`).
"""

import io
import json
import os
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.experiments import run_sweep, save_sweep
from repro.serve import (
    Address,
    ReproServer,
    protocol,
    request_one,
    request_stream,
    wait_for_server,
)


def submit_events(address, scenario, overrides=None, seed=1234, **kw):
    return list(request_stream(
        address, protocol.submit_request(scenario, overrides, seed=seed, **kw)
    ))


def test_ping_and_empty_status(server, address):
    assert wait_for_server(address, timeout=5)
    st = request_one(address, {"verb": "status"})
    assert st["event"] == "status" and st["jobs"] == []
    assert st["stats"]["workers"] == 2
    assert st["stats"]["jobs"] == 0


def test_single_submit_streams_points_and_result(server, address):
    offline = run_sweep("_serve_synth", seed=1234, workers=1)
    events = submit_events(address, "_serve_synth")
    kinds = [e["event"] for e in events]
    assert kinds[0] == "accepted" and kinds[-1] == "result"
    assert kinds.count("point") == 6
    done = sorted(e["done"] for e in events if e["event"] == "point")
    assert done == list(range(1, 7))
    term = events[-1]
    assert term["payload"] == offline.pretty_json()
    assert term["sha256"] == offline.sha256()
    assert term["executed_points"] == 6 and term["cached_points"] == 0


def test_concurrent_distinct_submits_all_serve_correct_bytes(server, address):
    seeds = [11, 22, 33, 44]
    offline = {s: run_sweep("_serve_synth", seed=s, workers=1) for s in seeds}
    results = {}

    def worker(seed):
        results[seed] = submit_events(address, "_serve_synth", seed=seed)

    threads = [threading.Thread(target=worker, args=(s,)) for s in seeds]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert len(results) == 4
    job_ids = set()
    for seed in seeds:
        acc, term = results[seed][0], results[seed][-1]
        assert not acc["coalesced"]  # four distinct requests
        job_ids.add(acc["job"])
        assert term["event"] == "result"
        assert term["payload"] == offline[seed].pretty_json()
    assert len(job_ids) == 4


def test_cancel_mid_flight_from_a_second_connection(server, address):
    events = []
    done = threading.Event()

    def streamer():
        for ev in request_stream(
            address, protocol.submit_request("_serve_slow", seed=5)
        ):
            events.append(ev)
            if ev["event"] == "accepted":
                done.set()
        done.set()

    t = threading.Thread(target=streamer)
    t.start()
    assert done.wait(10)
    job_id = events[0]["job"]
    ev = request_one(address, {"verb": "cancel", "job": job_id})
    assert ev["ok"] and ev["state"] in ("cancelling", "cancelled")
    t.join(timeout=30)
    assert not t.is_alive()
    assert events[-1] == {"event": "cancelled", "job": job_id}
    # Wave dispatch: a 2-worker pool never queues the whole grid, so a
    # prompt cancel leaves most of the 8 slow points unexecuted.
    assert sum(1 for e in events if e["event"] == "point") < 8
    row = request_one(address, {"verb": "status", "job": job_id})["jobs"][0]
    assert row["state"] == "cancelled"
    # The key is free again: a resubmit starts fresh instead of
    # attaching to the cancelled husk.
    retry = request_one(
        address, protocol.submit_request("_serve_slow", seed=5, detach=True)
    )
    assert retry["event"] == "accepted" and not retry["coalesced"]
    assert retry["job"] != job_id
    request_one(address, {"verb": "cancel", "job": retry["job"]})


def test_cancel_unknown_job_is_reported_not_fatal(server, address):
    ev = request_one(address, {"verb": "cancel", "job": "job-424242"})
    assert ev["event"] == "cancel" and not ev["ok"]
    assert "unknown job" in ev["state"]


def test_malformed_and_invalid_requests_get_error_events(server, address):
    import socket as socket_mod

    # Raw garbage on the wire.
    sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
    sock.connect(str(server.socket_path))
    stream = sock.makefile("rwb")
    stream.write(b"{ not json\n")
    stream.flush()
    events = list(protocol.read_events(stream))
    sock.close()
    assert len(events) == 1 and events[0]["event"] == "error"
    # Structurally valid but semantically wrong submits.
    bad_scenario = submit_events(address, "_no_such_scenario")
    assert bad_scenario[-1]["event"] == "error"
    assert "_no_such_scenario" in bad_scenario[-1]["message"]
    bad_grid = submit_events(address, "_serve_synth", {"bogus": [1]})
    assert bad_grid[-1]["event"] == "error"
    # The daemon survived all of it.
    assert wait_for_server(address, timeout=5)


def test_detach_then_poll_status_for_payload(server, address):
    offline = run_sweep("_serve_synth", seed=77, workers=1)
    acc = request_one(
        address, protocol.submit_request("_serve_synth", seed=77, detach=True)
    )
    assert acc["event"] == "accepted"
    deadline = time.monotonic() + 30
    row = None
    while time.monotonic() < deadline:
        row = request_one(
            address, {"verb": "status", "job": acc["job"]})["jobs"][0]
        if row["state"] == "done":
            break
        time.sleep(0.05)
    assert row is not None and row["state"] == "done"
    assert row["payload"] == offline.pretty_json()
    assert row["sha256"] == offline.sha256()


def test_graceful_shutdown_leaves_no_orphaned_workers(tmp_path):
    srv = ReproServer(socket_path=tmp_path / "d.sock", workers=2).start()
    address = Address(socket_path=srv.socket_path)
    assert wait_for_server(address, timeout=5)
    submit_events(address, "_serve_synth", seed=3)  # fork the pool
    pids = srv.pool.worker_pids()
    assert len(pids) == 2
    ev = request_one(address, {"verb": "shutdown"})
    assert ev["ok"]
    assert srv.wait(30)
    assert not srv.pool.started
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        gone = [pid for pid in pids if not _alive(pid)]
        if len(gone) == len(pids):
            break
        time.sleep(0.05)
    for pid in pids:
        assert not _alive(pid), f"orphaned pool worker {pid}"
    assert not srv.socket_path.exists()
    # New connections are refused after shutdown.
    with pytest.raises(OSError):
        request_one(address, {"verb": "ping"})


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def test_shutdown_now_cancels_running_jobs(tmp_path):
    srv = ReproServer(socket_path=tmp_path / "d.sock", workers=2).start()
    address = Address(socket_path=srv.socket_path)
    events = []

    def streamer():
        events.extend(request_stream(
            address, protocol.submit_request("_serve_slow", seed=9)
        ))

    t = threading.Thread(target=streamer)
    t.start()
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and not events:
        time.sleep(0.02)
    assert events and events[0]["event"] == "accepted"
    ev = request_one(address, {"verb": "shutdown", "mode": "now"})
    assert ev["ok"]
    assert srv.wait(30)
    t.join(timeout=10)
    assert events[-1]["event"] == "cancelled"
    assert not srv.pool.started


def test_handed_pool_is_left_open(tmp_path):
    from repro.experiments.pool import SweepPool

    with SweepPool(2) as pool:
        srv = ReproServer(socket_path=tmp_path / "d.sock", pool=pool).start()
        address = Address(socket_path=srv.socket_path)
        submit_events(address, "_serve_synth", seed=4)
        pids = pool.worker_pids()
        request_one(address, {"verb": "shutdown"})
        assert srv.wait(30)
        # The server never closes a pool it was handed (same contract
        # as the sweep driver); the context manager owns it.
        assert pool.started and pool.worker_pids() == pids


def test_cli_serve_and_submit_roundtrip(tmp_path):
    """The real entry points end to end: `repro serve` in a thread,
    `repro submit --out` writing byte-identical files, `--status`,
    then `--shutdown` returning the serve loop."""
    sock = tmp_path / "cli.sock"
    serve_out = io.StringIO()
    codes = {}

    def serve():
        codes["serve"] = cli_main(
            ["serve", "--socket", str(sock), "--workers", "2"], out=serve_out)

    t = threading.Thread(target=serve)
    t.start()
    assert wait_for_server(Address(socket_path=sock), timeout=10)

    offline_dir, served_dir = tmp_path / "offline", tmp_path / "served"
    buf = io.StringIO()
    assert cli_main(["sweep", "_serve_synth", "--grid", "k=0,1,2",
                     "--out", str(offline_dir)], out=buf) == 0
    buf = io.StringIO()
    code = cli_main(["submit", "_serve_synth", "--grid", "k=0,1,2",
                     "--socket", str(sock), "--out", str(served_dir)], out=buf)
    assert code == 0, buf.getvalue()
    text = buf.getvalue()
    assert "accepted job-" in text and "served _serve_synth" in text
    offline = (offline_dir / "_serve_synth.json").read_bytes()
    served = (served_dir / "_serve_synth.json").read_bytes()
    assert served == offline  # byte-identical on disk, not just on the wire

    buf = io.StringIO()
    assert cli_main(["submit", "--status", "--socket", str(sock)], out=buf) == 0
    assert "job-000001" in buf.getvalue() and "done" in buf.getvalue()

    buf = io.StringIO()
    assert cli_main(["submit", "--shutdown", "--socket", str(sock)], out=buf) == 0
    t.join(timeout=30)
    assert not t.is_alive() and codes["serve"] == 0
    assert "shut down cleanly" in serve_out.getvalue()


def test_cli_submit_usage_errors(tmp_path):
    buf = io.StringIO()
    assert cli_main(["submit", "_serve_synth"], out=buf) == 2  # no address
    buf = io.StringIO()
    assert cli_main(["submit", "--socket", str(tmp_path / "none.sock")],
                    out=buf) == 2  # no scenario, no control verb
    buf = io.StringIO()
    code = cli_main(["submit", "_serve_synth", "--status",
                     "--socket", str(tmp_path / "none.sock")], out=buf)
    assert code == 2  # control verb + scenario is ambiguous
    buf = io.StringIO()
    code = cli_main(["submit", "_serve_synth",
                     "--socket", str(tmp_path / "none.sock")], out=buf)
    # Unreachable daemon is its own exit code (4), distinct from usage
    # errors (2), failed jobs (1), and cancelled jobs (3).
    assert code == 4 and "cannot reach daemon" in buf.getvalue()
