"""Shared fixtures for the serving tests.

Registers two synthetic scenarios once per session (``replace=True``
keeps re-imports benign) with module-level point functions so forked
pool workers resolve them by reference:

- ``_serve_synth`` — pure arithmetic, fast: exercises protocol,
  coalescing accounting, and byte-identity without simulation cost.
- ``_serve_slow`` — sleeps per point: keeps jobs in flight long enough
  for concurrent submits to coalesce and for cancels to land mid-run.

The ``server`` fixture boots a daemon on a per-test unix socket with a
dedicated two-worker pool and guarantees teardown even when a test
fails mid-stream.
"""

import time

import pytest

from repro.experiments import Scenario, register
from repro.serve import Address, ReproServer


def serve_synth_point(cfg):
    return {"y": cfg["k"] * cfg["scale"] + cfg["seed"] / 7.0}


def serve_slow_point(cfg):
    time.sleep(cfg["delay_s"])
    return {"y": cfg["k"] * 2.0 + cfg["seed"] / 11.0}


SYNTH = register(Scenario(
    name="_serve_synth",
    title="serve synthetic",
    description="serving test scenario (fast)",
    run_point=serve_synth_point,
    grid={"k": tuple(range(6))},
    x="k",
    curves=("y",),
    defaults={"scale": 3.0},
), replace=True)

SLOW = register(Scenario(
    name="_serve_slow",
    title="serve slow",
    description="serving test scenario (sleeps per point)",
    run_point=serve_slow_point,
    grid={"k": tuple(range(8))},
    x="k",
    curves=("y",),
    defaults={"delay_s": 0.15},
), replace=True)


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(socket_path=tmp_path / "repro.sock", workers=2)
    srv.start()
    try:
        yield srv
    finally:
        srv.close()


@pytest.fixture
def address(server):
    return Address(socket_path=server.socket_path)
