"""Serve-daemon observability: metrics verb, Prometheus text, logging."""

import io
import json
import logging

import pytest

from repro.serve import protocol
from repro.serve.logs import (
    JsonFormatter,
    KVFormatter,
    configure_logging,
    log_event,
    server_logger,
)
from repro.serve.server import ReproServer


@pytest.fixture
def server(tmp_path):
    # No start(): handle_request is exercised socket-free.
    return ReproServer(socket_path=tmp_path / "obs.sock", workers=1)


def _request(server, msg):
    events = []
    server.handle_request(protocol.parse_request(msg), events.append)
    return events


def test_metrics_verb_returns_prometheus_text(server):
    (event,) = _request(server, {"verb": "metrics"})
    assert event["event"] == "metrics"
    assert event["content_type"].startswith("text/plain")
    text = event["text"]
    assert "# TYPE repro_serve_requests_total counter" in text
    assert "repro_serve_workers 1" in text
    assert "repro_serve_active_jobs 0" in text


def test_request_counters_and_latency_accumulate(server):
    _request(server, {"verb": "ping"})
    _request(server, {"verb": "ping"})
    (event,) = _request(server, {"verb": "metrics"})
    text = event["text"]
    assert 'repro_serve_requests_total{verb="ping"} 2' in text
    assert 'repro_serve_request_seconds_count{verb="ping"} 2' in text
    assert 'repro_serve_request_seconds_bucket{verb="ping",le="+Inf"} 2' in text


def test_metrics_verb_round_trips_the_protocol():
    parsed = protocol.parse_request({"verb": "metrics"})
    assert parsed == {"verb": "metrics"}
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_request({"verb": "nope"})


# --------------------------------------------------------------------------- #
# Structured logging                                                          #
# --------------------------------------------------------------------------- #


def _capture(json_mode):
    stream = io.StringIO()
    handler = configure_logging("debug", json_mode=json_mode, stream=stream)
    return stream, handler


def teardown_function(_fn):
    for h in list(server_logger.handlers):
        server_logger.removeHandler(h)


def test_kv_lines_carry_event_and_fields():
    stream, _ = _capture(json_mode=False)
    log_event(server_logger, logging.INFO, "job_admitted",
              job="job-000001", request_key="abcd", coalesced=False)
    line = stream.getvalue().strip()
    assert " INFO repro.serve job_admitted " in line
    assert "job=job-000001" in line and "request_key=abcd" in line
    assert "coalesced=False" in line


def test_json_lines_are_parseable_objects():
    stream, _ = _capture(json_mode=True)
    log_event(server_logger, logging.WARNING, "submit_rejected",
              reason="bad grid", scenario="fig8")
    obj = json.loads(stream.getvalue().strip())
    assert obj["event"] == "submit_rejected"
    assert obj["level"] == "WARNING"
    assert obj["logger"] == "repro.serve"
    assert obj["reason"] == "bad grid" and obj["scenario"] == "fig8"


def test_configure_logging_is_idempotent():
    _capture(json_mode=False)
    _capture(json_mode=True)
    named = [h for h in server_logger.handlers
             if h.get_name() == "repro-serve-cli"]
    assert len(named) == 1


def test_level_threshold_suppresses_debug():
    stream = io.StringIO()
    configure_logging("warning", stream=stream)
    log_event(server_logger, logging.DEBUG, "job_running", job="j")
    log_event(server_logger, logging.INFO, "job_done", job="j")
    assert stream.getvalue() == ""
    log_event(server_logger, logging.ERROR, "job_failed", job="j")
    assert "job_failed" in stream.getvalue()
