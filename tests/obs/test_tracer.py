"""Tracer promotion: spans, ring-buffer caps, drop accounting."""

from repro.sim.engine import Environment
from repro.sim.trace import NULL_SPAN, Tracer


def test_emit_ring_cap_drops_oldest_and_counts():
    env = Environment()
    tr = Tracer(env, max_records=5)
    for i in range(12):
        tr.emit("cat", "ev", i=i)
    assert len(tr.records) == 5
    assert [r.attrs["i"] for r in tr.records] == list(range(7, 12))
    assert tr.dropped == 7
    # counters keep the true total even once the ring evicts
    assert tr.count("cat", "ev") == 12


def test_keep_predicate_still_filters_with_cap():
    env = Environment()
    tr = Tracer(env, keep=lambda r: r.attrs["i"] % 2 == 0, max_records=2)
    for i in range(8):
        tr.emit("cat", "ev", i=i)
    assert [r.attrs["i"] for r in tr.records] == [4, 6]
    # filtered-out records are not "dropped": they were never retained
    assert tr.dropped == 2


def test_span_seals_with_duration_and_attrs():
    env = Environment()
    tr = Tracer(env)

    def proc():
        span = tr.span("task", "map 0", track="node0/slot0", job=1)
        yield env.timeout(2.5)
        span.end(records=4)

    env.process(proc())
    env.run()
    (span,) = tr.spans
    assert (span.start, span.end) == (0.0, 2.5)
    assert span.duration == 2.5
    assert span.category == "task" and span.track == "node0/slot0"
    assert span.attrs == {"job": 1, "records": 4}


def test_span_end_is_idempotent_and_track_defaults_to_category():
    env = Environment()
    tr = Tracer(env)
    span = tr.span("phase", "shuffle")
    span.end()
    span.end()
    assert len(tr.spans) == 1
    assert tr.spans[0].track == "phase"


def test_span_context_manager_closes():
    env = Environment()
    tr = Tracer(env)
    with tr.span("phase", "merge"):
        pass
    assert len(tr.spans) == 1


def test_disabled_tracer_returns_shared_null_span():
    env = Environment()
    tr = Tracer(env, enabled=False)
    span = tr.span("task", "map 0")
    assert span is NULL_SPAN
    span.end(anything="goes")
    with tr.span("task", "map 1"):
        pass
    assert len(tr.spans) == 0


def test_span_ring_cap_counts_drops():
    env = Environment()
    tr = Tracer(env, max_records=3)
    for i in range(5):
        tr.span("task", f"t{i}").end()
    assert len(tr.spans) == 3
    assert tr.dropped == 2
    assert [s.name for s in tr.select_spans("task")] == ["t2", "t3", "t4"]


def test_clear_resets_everything():
    env = Environment()
    tr = Tracer(env, max_records=1)
    tr.emit("c", "e")
    tr.emit("c", "e")
    tr.span("c", "s").end()
    tr.clear()
    assert len(tr.records) == 0 and len(tr.spans) == 0
    assert tr.dropped == 0 and tr.count("c") == 0
