"""The telemetry hard invariant: observation never perturbs canonical bytes.

Runs a small real sweep twice per engine x model mode combination —
once cold, once with metrics collection AND span tracing fully enabled
— and requires identical ``canonical_json()``/``sha256()``. This is
what makes it safe to leave the instrumentation wired into the engine,
the Hadoop model, HDFS, and the sweep driver permanently.
"""

import itertools

import pytest

import repro.modelmode as modelmode
import repro.obs as obs
import repro.sim.engine as engine
from repro.experiments import run_sweep
from repro.obs.traceexport import TraceCollector

GRID = {"nodes": [2, 4], "samples": 1e9}

MODES = list(itertools.product([False, True], repeat=2))


@pytest.mark.parametrize(
    "reference_engine,reference_model", MODES,
    ids=[f"eng{'RF'[e]}-mod{'RF'[m]}" for e, m in MODES],
)
def test_sweep_bytes_identical_with_telemetry_enabled(
    reference_engine, reference_model
):
    prev_e = engine.set_reference_mode(reference_engine)
    prev_m = modelmode.set_model_reference(reference_model)
    try:
        baseline = run_sweep("fig8", GRID, seed=7)

        prev_obs = obs.set_obs(True)
        obs.reset_registry()
        collector = TraceCollector()
        prev_collector = obs.set_trace_collector(collector)
        try:
            instrumented = run_sweep("fig8", GRID, seed=7,
                                     collect_metrics=True)
        finally:
            obs.set_trace_collector(prev_collector)
            obs.set_obs(prev_obs)
    finally:
        modelmode.set_model_reference(prev_m)
        engine.set_reference_mode(prev_e)

    assert instrumented.sha256() == baseline.sha256()
    assert instrumented.canonical_json() == baseline.canonical_json()
    # The instrumentation actually ran: spans were recorded and every
    # point carried a metrics snapshot back...
    assert collector.span_count() > 0
    assert all(p.get("metrics") for p in instrumented.points)
    # ...and none of it leaked into the canonical payload.
    canonical = instrumented.canonical_dict()
    assert all(set(row) == {"params", "values"}
               for row in canonical["points"])


def test_collect_metrics_snapshots_have_sim_counters():
    prev_obs = obs.set_obs(False)  # driver flips obs on per point itself
    try:
        result = run_sweep("fig8", {"nodes": [2], "samples": 1e9},
                           seed=7, collect_metrics=True)
    finally:
        obs.set_obs(prev_obs)
    (row,) = result.points
    snap = row["metrics"]
    assert snap["sim_heartbeats_total"]["values"][""] > 0
    assert snap["sim_assignments_total"]["values"][""] > 0
    assert "sim_vt_map_slot_utilization" in snap


def test_worker_pool_path_matches_serial_with_metrics():
    """collect_metrics survives the multiprocess dispatch path and the
    bytes still match a plain serial run."""
    plain = run_sweep("fig8", GRID, seed=3)
    collected = run_sweep("fig8", GRID, seed=3, workers=2,
                          collect_metrics=True)
    assert collected.sha256() == plain.sha256()
    assert all(p.get("metrics") for p in collected.points)
