"""CLI surface of the telemetry layer: trace/metrics commands, sweep -v."""

import io
import json

from repro.cli import main


def run_cli(argv):
    buf = io.StringIO()
    code = main(argv, out=buf)
    return code, buf.getvalue()


def test_trace_command_writes_loadable_json(tmp_path):
    out = tmp_path / "t.json"
    code, text = run_cli(["trace", "fig8", "--grid", "nodes=2",
                          "--grid", "samples=1e9", "--out", str(out)])
    assert code == 0
    assert "traced fig8 point 0" in text
    assert str(out) in text
    trace = json.loads(out.read_text())
    assert trace["traceEvents"]


def test_trace_point_out_of_range_is_usage_error(tmp_path):
    code, text = run_cli(["trace", "fig8", "--grid", "nodes=2",
                          "--point", "99", "--out", str(tmp_path / "t.json")])
    assert code == 2
    assert "out of range" in text


def test_metrics_command_prints_counters_and_series():
    code, text = run_cli(["metrics", "fig8", "--grid", "nodes=2",
                          "--grid", "samples=1e9"])
    assert code == 0
    assert "sim_heartbeats_total" in text
    assert "sim_heartbeat_service_latency_seconds" in text
    assert "sim_vt_map_slot_utilization" in text


def test_metrics_unknown_scenario_is_usage_error():
    code, text = run_cli(["metrics", "nope"])
    assert code == 2
    assert "error:" in text


def test_sweep_verbose_aggregates_point_metrics(tmp_path):
    code, text = run_cli(["sweep", "fig8", "--grid", "nodes=2,4",
                          "--grid", "samples=1e9", "--no-save", "-v",
                          "--out", str(tmp_path)])
    assert code == 0
    assert "metrics over 2 instrumented point(s)" in text
    assert "sim_heartbeats_total" in text
    assert "points: 2 executed, 0 assembled from cache" in text


def test_sweep_quiet_collects_nothing(tmp_path):
    code, text = run_cli(["sweep", "fig8", "--grid", "nodes=2",
                          "--grid", "samples=1e9", "--no-save",
                          "--out", str(tmp_path)])
    assert code == 0
    assert "metrics over" not in text


def test_submit_metrics_is_exclusive_control_verb():
    code, text = run_cli(["submit", "fig8", "--metrics",
                          "--socket", "/tmp/nonexistent.sock"])
    assert code == 2
    assert "exclusive" in text
