"""Metric primitives: instruments, registry, Prometheus exposition."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeseries,
)
from repro.obs.prometheus import CONTENT_TYPE, render


# --------------------------------------------------------------------------- #
# Instruments                                                                 #
# --------------------------------------------------------------------------- #


def test_counter_accumulates_and_rejects_negatives():
    c = Counter("c", "help")
    c.inc()
    c.inc(2.5)
    assert c.value() == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_labels_are_independent_and_validated():
    c = Counter("c", labels=("outcome",))
    c.inc(outcome="hit")
    c.inc(3, outcome="miss")
    assert c.value(outcome="hit") == 1
    assert c.value(outcome="miss") == 3
    with pytest.raises(ValueError):
        c.inc()  # label missing
    with pytest.raises(ValueError):
        c.inc(wrong="x")


def test_gauge_last_write_wins():
    g = Gauge("g")
    g.set(7)
    g.set(2)
    g.inc(0.5)
    assert g.value() == 2.5


def test_histogram_bucketing_units():
    """Upper bounds are inclusive (``le`` semantics); values beyond the
    last bound land in the overflow slot; sum/count are exact."""
    h = Histogram("h", buckets=(1.0, 2.0, 5.0))
    for v in (0.5, 1.0, 1.5, 5.0, 99.0):
        h.observe(v)
    state = h.state()
    assert state.counts == [2, 1, 1, 1]  # le=1, le=2, le=5, +Inf
    assert state.count == 5
    assert state.sum == pytest.approx(0.5 + 1.0 + 1.5 + 5.0 + 99.0)


def test_histogram_rejects_degenerate_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0))


def test_timeseries_cap_drops_newest_and_counts():
    ts = Timeseries("t", max_points=3)
    for i in range(5):
        ts.observe(float(i), i * 10.0)
    assert ts.points() == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]
    assert ts.dropped == 2


# --------------------------------------------------------------------------- #
# Registry                                                                    #
# --------------------------------------------------------------------------- #


def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    a = reg.counter("x", "first")
    b = reg.counter("x", "second registration ignored")
    assert a is b
    assert reg.get("x") is a


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")


def test_registry_snapshot_and_reset():
    reg = MetricsRegistry()
    reg.counter("a").inc(2)
    reg.histogram("b", buckets=(1.0,)).observe(0.5)
    snap = reg.snapshot()
    assert snap["a"]["kind"] == "counter"
    assert snap["a"]["values"][""] == 2
    assert snap["b"]["values"][""]["count"] == 1
    reg.reset()
    assert reg.snapshot() == {}


# --------------------------------------------------------------------------- #
# Prometheus text exposition                                                  #
# --------------------------------------------------------------------------- #


def test_prometheus_render_simple_and_labeled():
    reg = MetricsRegistry()
    reg.counter("jobs_total", "Jobs done").inc(3)
    reg.gauge("workers", "Pool size").set(4)
    labeled = reg.counter("points_total", "Points", labels=("source",))
    labeled.inc(7, source="executed")
    text = render(reg)
    assert "# HELP jobs_total Jobs done" in text
    assert "# TYPE jobs_total counter" in text
    assert "jobs_total 3" in text
    assert "workers 4" in text
    assert 'points_total{source="executed"} 7' in text
    assert CONTENT_TYPE.startswith("text/plain")


def test_prometheus_render_histogram_is_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "Latency", buckets=(1.0, 2.0))
    for v in (0.5, 1.5, 99.0):
        h.observe(v)
    text = render(reg)
    assert 'lat_bucket{le="1"} 1' in text
    assert 'lat_bucket{le="2"} 2' in text
    assert 'lat_bucket{le="+Inf"} 3' in text
    assert "lat_count 3" in text
    assert "lat_sum 101" in text
    assert "# TYPE lat histogram" in text


def test_prometheus_skips_timeseries():
    reg = MetricsRegistry()
    reg.timeseries("vt").observe(0.0, 1.0)
    reg.counter("c").inc()
    text = render(reg)
    assert "vt" not in text
    assert "# TYPE c counter" in text
