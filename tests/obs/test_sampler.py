"""Virtual-time sampling and post-run counter flushing on real jobs."""

import pytest

import repro.obs as obs
from repro.core import run_encryption_job, run_pi_job
from repro.perf import Backend
from repro.perf.calibration import MB


@pytest.fixture
def obs_registry():
    prev = obs.set_obs(True)
    obs.reset_registry()
    try:
        yield obs.registry()
    finally:
        obs.set_obs(prev)
        obs.reset_registry()


def test_pi_job_populates_vt_series_and_latency(obs_registry):
    result = run_pi_job(2, 1e9, Backend.CELL_SPE_DIRECT, seed=1)
    assert result.succeeded
    snap = obs_registry.snapshot()

    util = snap["sim_vt_map_slot_utilization"]["values"][""]
    assert len(util) >= 2
    # samples are (virtual_time, fraction) with t strictly increasing
    times = [t for t, _ in util]
    assert times == sorted(times)
    assert all(0.0 <= v <= 1.0 for _, v in util)
    assert max(v for _, v in util) > 0.0  # the job actually ran maps

    assert "sim_vt_pending_tasks" in snap
    assert "sim_vt_heartbeat_parks" in snap

    lat = snap["sim_heartbeat_service_latency_seconds"]["values"][""]
    assert lat["count"] > 0
    assert lat["sum"] >= 0.0


def test_pi_job_flushes_model_counters(obs_registry):
    run_pi_job(2, 1e9, Backend.CELL_SPE_DIRECT, seed=1)
    reg = obs_registry
    assert reg.get("sim_heartbeats_total").value() > 0
    assert reg.get("sim_assignments_total").value() > 0
    assert reg.get("sim_events_total").value() > 0
    # heartbeat batch histogram arrives as a size-labelled counter whose
    # total equals the batch count
    passes = reg.get("sim_heartbeat_batch_passes_total")
    total = sum(passes.snapshot()["values"].values())
    assert total == reg.get("sim_heartbeat_batches_total").value()


def test_encryption_job_flushes_hdfs_counters(obs_registry):
    result = run_encryption_job(2, 64 * MB, Backend.CELL_SPE_DIRECT, seed=1)
    assert result.succeeded
    reg = obs_registry
    assert reg.get("sim_hdfs_bytes_served_total").value() >= 64 * MB
    local = reg.get("sim_hdfs_reads_local_total")
    remote = reg.get("sim_hdfs_reads_remote_total")
    reads = (local.value() if local else 0) + (remote.value() if remote else 0)
    assert reads > 0


def test_repeated_flush_never_double_counts(obs_registry):
    """publish_metrics runs once per job; the high-water-mark delta flush
    must keep two identical jobs at exactly twice one job's totals."""
    run_pi_job(2, 1e9, Backend.CELL_SPE_DIRECT, seed=1)
    one = obs_registry.get("sim_heartbeats_total").value()
    run_pi_job(2, 1e9, Backend.CELL_SPE_DIRECT, seed=1)
    assert obs_registry.get("sim_heartbeats_total").value() == 2 * one


def test_sampler_does_not_change_job_outcome():
    baseline = run_pi_job(2, 1e9, Backend.CELL_SPE_DIRECT, seed=1)
    prev = obs.set_obs(True)
    obs.reset_registry()
    try:
        sampled = run_pi_job(2, 1e9, Backend.CELL_SPE_DIRECT, seed=1)
    finally:
        obs.set_obs(prev)
        obs.reset_registry()
    assert sampled.makespan_s == baseline.makespan_s
    assert sampled.summary() == baseline.summary()
