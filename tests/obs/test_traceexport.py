"""Chrome-trace / Perfetto JSON export: collector plumbing and schema."""

import json

import repro.obs as obs
from repro.core import run_pi_job
from repro.obs.traceexport import TraceCollector, chrome_trace, write_chrome_trace
from repro.perf import Backend


def _traced_pi_run(**collector_kwargs):
    collector = TraceCollector(**collector_kwargs)
    prev = obs.set_trace_collector(collector)
    try:
        result = run_pi_job(2, 1e9, Backend.CELL_SPE_DIRECT, seed=1)
    finally:
        obs.set_trace_collector(prev)
    assert result.succeeded
    return collector


def test_collector_tracer_is_ring_capped_and_counted():
    collector = _traced_pi_run(max_records=10)
    (tracer,) = collector.tracers
    assert tracer.enabled
    assert len(tracer.records) <= 10 and len(tracer.spans) <= 10
    assert collector.dropped > 0  # a real job overflows a 10-slot ring
    assert collector.span_count() == len(tracer.spans)


def test_chrome_trace_schema_is_perfetto_loadable(tmp_path):
    collector = _traced_pi_run()
    out = tmp_path / "trace.json"
    returned = write_chrome_trace(out, collector=collector)

    trace = json.loads(out.read_text())  # round-trips as strict JSON
    assert trace == returned
    events = trace["traceEvents"]
    assert events
    assert trace["displayTimeUnit"] == "ms"
    assert trace["otherData"]["dropped_records"] == collector.dropped

    for ev in events:
        assert {"ph", "pid", "tid", "ts", "name"} <= set(ev)
        assert ev["ph"] in ("M", "X", "i")
    completes = [e for e in events if e["ph"] == "X"]
    assert completes and all(e["dur"] >= 0 for e in completes)
    instants = [e for e in events if e["ph"] == "i"]
    assert all(e["s"] == "t" for e in instants)

    # process/thread metadata exists for every (pid, tid) used by events
    named_threads = {(e["pid"], e["tid"]) for e in events
                     if e["ph"] == "M" and e["name"] == "thread_name"}
    used = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
    assert used <= named_threads
    assert any(e["ph"] == "M" and e["name"] == "process_name" for e in events)


def test_span_taxonomy_covers_tasks_and_kernel_phases():
    collector = _traced_pi_run()
    cats = {s.category for t in collector.tracers for s in t.spans}
    assert {"job", "task", "kernel"} <= cats
    tracks = {s.track for t in collector.tracers for s in t.spans}
    assert any(track.endswith("/kernel") for track in tracks)


def test_chrome_trace_of_nothing_is_valid():
    trace = chrome_trace([])
    assert trace["traceEvents"] == []
    json.dumps(trace)
