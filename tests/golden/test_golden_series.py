"""Golden-series regression tests.

Freezes the canonical sweep output of every figure scenario (reduced
grids, fixed seed) under ``tests/golden/data/`` and asserts the current
tree reproduces the stored bytes exactly:

- in both engine modes (optimized fast loop and the pre-overhaul
  reference loop selected by ``REPRO_SIM_REFERENCE=1``), and
- under the parallel sweep driver at 1, 2, and 4 workers.

Byte identity, not approximate equality: a single-ulp drift in any
makespan is a contract violation (see ``docs/EXPERIMENTS.md``). To
re-freeze after an *intentional* calibration/model change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/golden -q

and review the resulting diff like any other code change.
"""

import os
from pathlib import Path

import pytest

import repro.sim.engine as engine
from repro.experiments import run_sweep

GOLDEN_DIR = Path(__file__).parent / "data"

#: Reduced grids: the full paper grids belong to `-m sweep` (see
#: tests/integration/test_sweep_e2e.py); these keep tier-1 fast while
#: still covering every backend, both workload families, and — through
#: the scheduling scenarios — every placement policy under multi-job
#: contention.
CASES = {
    "fig2": {"size_mb": [1, 16, 256]},
    "fig4": {"nodes": [4, 8], "gb_per_mapper": 0.5},
    "fig5": {"nodes": [2, 4], "data_gb": 4},
    "fig6": {"samples": [1e3, 1e6, 1e9]},
    "fig7": {"nodes": 4, "samples": [1e4, 1e8]},
    "fig8": {"nodes": [2, 4], "samples": 1e9},
    "multijob": {"num_jobs": [2, 4], "nodes": 2},
    "sched_compare": {"nodes": [2, 4]},
    # The cluster-scale family's paper-sized grid (256-1024 nodes) is
    # `-m sweep` territory; this reduced weak-scaling slice still runs
    # every policy under multi-job contention.
    "scale": {"nodes": [16, 32], "num_jobs": 3},
    # Elastic-membership families: churn plans and preemption are part
    # of the byte-frozen contract like any other scheduler decision.
    "elastic": {"nodes": [2, 4]},
    "spot_storm": {"revoked": [0, 2]},
    "sla_mix": {"nodes": [2, 4]},
}

#: The churn families exercise the membership paths end to end, so they
#: are additionally pinned under the parallel sweep driver.
ELASTIC_FIGS = ["elastic", "spot_storm", "sla_mix"]

FIGS = sorted(CASES)


@pytest.fixture
def reference_mode():
    prev = engine.set_reference_mode(True)
    try:
        yield
    finally:
        engine.set_reference_mode(prev)


def _check_against_golden(result) -> None:
    path = GOLDEN_DIR / f"{result.scenario}.golden.json"
    # pretty_json is also exactly what save_sweep writes: the goldens
    # pin the same bytes users get under results/.
    text = result.pretty_json()
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return
    assert path.exists(), (
        f"missing golden {path.name}; generate with "
        f"REPRO_UPDATE_GOLDEN=1 pytest tests/golden"
    )
    golden = path.read_text()
    assert text == golden, (
        f"{result.scenario}: series drifted from the frozen golden "
        f"({path.name}). If the change is intentional, re-freeze with "
        f"REPRO_UPDATE_GOLDEN=1 and review the diff."
    )


@pytest.mark.parametrize("fig", FIGS)
def test_golden_fast_engine(fig):
    _check_against_golden(run_sweep(fig, CASES[fig], workers=1))


@pytest.mark.parametrize("fig", FIGS)
def test_golden_reference_engine(fig, reference_mode):
    """The pre-overhaul event loop must land on the same bytes."""
    _check_against_golden(run_sweep(fig, CASES[fig], workers=1))


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_golden_fig8_parallel_driver(workers):
    """`repro sweep fig8 --workers N` is byte-identical for N=1,2,4."""
    _check_against_golden(run_sweep("fig8", CASES["fig8"], workers=workers))


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("fig", ELASTIC_FIGS)
def test_golden_elastic_families_parallel_driver(fig, workers):
    """Churn/preemption scenarios are byte-identical at 1, 2, 4 workers:
    worker count must never leak into the simulated timeline."""
    _check_against_golden(run_sweep(fig, CASES[fig], workers=workers))


@pytest.mark.parametrize("workers", [2])
def test_golden_fig8_parallel_reference_engine(workers, reference_mode):
    """Parallel driver + reference engine: workers re-apply the parent's
    engine mode, so even this combination pins to the same bytes."""
    _check_against_golden(run_sweep("fig8", CASES["fig8"], workers=workers))


def test_goldens_have_no_strays():
    """Every stored golden corresponds to a case (catches renames)."""
    stored = {p.name for p in GOLDEN_DIR.glob("*.golden.json")}
    expected = {f"{fig}.golden.json" for fig in FIGS}
    assert stored == expected
