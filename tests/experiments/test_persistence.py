"""Persistence tests: JSON/CSV writing and worker-count invariance of
the on-disk bytes."""

import json

from repro.experiments import run_sweep, save_sweep, sweep_csv


def test_save_sweep_writes_json_csv_meta(tmp_path):
    result = run_sweep("_test_synth", workers=1)
    paths = save_sweep(result, tmp_path)
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "_test_synth.csv", "_test_synth.json", "_test_synth.meta.json",
    ]
    data = json.loads(paths["json"].read_text())
    assert data["scenario"] == "_test_synth"
    assert data == result.canonical_dict()
    meta = json.loads(paths["meta"].read_text())
    assert meta["sha256"] == result.sha256()
    assert meta["workers"] == 1
    assert meta["calibration"]["hdfs_block_bytes"] == 64 * 1024 * 1024


def test_saved_json_and_csv_identical_across_worker_counts(tmp_path):
    a = save_sweep(run_sweep("_test_synth", workers=1), tmp_path / "w1")
    b = save_sweep(run_sweep("_test_synth", workers=4), tmp_path / "w4")
    assert a["json"].read_bytes() == b["json"].read_bytes()
    assert a["csv"].read_bytes() == b["csv"].read_bytes()


def test_csv_round_trips_exact_floats():
    result = run_sweep("_test_synth", workers=1)
    lines = sweep_csv(result).strip().splitlines()
    assert lines[0] == "k,y"
    for line, x, y in zip(lines[1:], result.series[0].xs, result.series[0].ys):
        cx, cy = line.split(",")
        assert float(cx) == x
        assert float(cy) == y  # repr round-trip: exact, not approximate
