"""Cross-host sharded sweeps: deterministic partitions, byte-identical
merges in every engine/model mode, and refusal of unsafe merges."""

import io
import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.cli import main as cli_main
from repro.experiments import get_scenario, run_sweep
from repro.experiments.shard import (
    ShardError,
    merge_shards,
    parse_shard_spec,
    run_shard,
    shard_indices,
    write_shard,
)


# -- specs and partitions ----------------------------------------------------

def test_parse_shard_spec():
    assert parse_shard_spec("0/4") == (0, 4)
    assert parse_shard_spec("3/4") == (3, 4)
    for bad in ("4/4", "-1/4", "1/0", "x/4", "2", "1/2/3", "/"):
        with pytest.raises(ShardError):
            parse_shard_spec(bad)


def test_shard_indices_partition_the_grid():
    for points in (1, 7, 12):
        for count in (1, 2, 3, 5):
            covered = []
            for i in range(count):
                part = shard_indices(points, i, count)
                assert part == sorted(part)
                covered.extend(part)
            assert sorted(covered) == list(range(points))  # disjoint cover
    with pytest.raises(ShardError):
        shard_indices(5, 2, 2)


# -- merge determinism -------------------------------------------------------

def _shard_and_merge(scenario, count, overrides=None, order=None, seed=None):
    manifests = [
        run_shard(scenario, i, count, overrides, seed=seed, workers=1)
        for i in range(count)
    ]
    if order is not None:
        manifests = [manifests[i] for i in order]
    with tempfile.TemporaryDirectory() as td:
        dirs = [write_shard(m, Path(td) / f"s{i}").parent
                for i, m in enumerate(manifests)]
        return merge_shards(dirs)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), count=st.integers(min_value=1, max_value=5))
def test_any_partition_any_merge_order_reproduces_serial_sha(data, count):
    """The tentpole property: every round-robin partition of the grid,
    merged in any shard order, lands on the serial sha256."""
    order = data.draw(st.permutations(range(count)))
    serial = run_sweep("_test_synth", workers=1)
    merged = _shard_and_merge("_test_synth", count, order=order)
    assert merged.sha256() == serial.sha256()
    assert merged.canonical_json() == serial.canonical_json()


@pytest.mark.parametrize("engine_ref", [False, True])
@pytest.mark.parametrize("model_ref", [False, True])
def test_shard_merge_parity_real_scenario_all_modes(engine_ref, model_ref):
    """A real simulated scenario (reduced fig8 grid) shards and merges
    byte-identically under every engine-mode x model-mode combination;
    the manifests record the modes they ran under."""
    overrides = {"nodes": [2, 4], "samples": 1e9}
    prev_e = engine.set_reference_mode(engine_ref)
    prev_m = modelmode.set_model_reference(model_ref)
    try:
        serial = run_sweep("fig8", overrides, workers=1)
        merged = _shard_and_merge("fig8", 2, overrides)
    finally:
        engine.set_reference_mode(prev_e)
        modelmode.set_model_reference(prev_m)
    assert merged.sha256() == serial.sha256()


def test_merge_result_carries_scenario_metadata():
    serial = run_sweep("_test_synth", {"k": [1, 3, 5]}, seed=77)
    merged = _shard_and_merge("_test_synth", 3, {"k": [1, 3, 5]}, seed=77)
    assert merged.seed == 77
    assert merged.grid == {"k": [1, 3, 5]}
    assert merged.workers == 0  # nothing ran on the merging host
    assert merged.pretty_json() == serial.pretty_json()


def test_shard_manifest_contents(tmp_path):
    manifest = run_shard("_test_synth", 1, 4, workers=1)
    assert manifest["point_indices"] == [1, 5]
    assert manifest["shard_index"] == 1 and manifest["shard_count"] == 4
    assert set(manifest["results"]) == {"1", "5"}
    path = write_shard(manifest, tmp_path)
    assert path.name == "_test_synth.shard-1-of-4.json"
    assert json.loads(path.read_text())["format"] == 1


# -- unsafe merges are refused -----------------------------------------------

def _write_set(tmp_path, manifests):
    return [write_shard(m, tmp_path / f"d{i}").parent
            for i, m in enumerate(manifests)]


def test_merge_refuses_seed_mismatch(tmp_path):
    dirs = _write_set(tmp_path, [
        run_shard("_test_synth", 0, 2, workers=1),
        run_shard("_test_synth", 1, 2, seed=999, workers=1),
    ])
    with pytest.raises(ShardError, match="mismatch"):
        merge_shards(dirs)


def test_merge_refuses_mode_mismatch(tmp_path):
    m0 = run_shard("_test_synth", 0, 2, workers=1)
    prev = engine.set_reference_mode(True)
    try:
        m1 = run_shard("_test_synth", 1, 2, workers=1)
    finally:
        engine.set_reference_mode(prev)
    with pytest.raises(ShardError, match="mismatch"):
        merge_shards(_write_set(tmp_path, [m0, m1]))


def test_merge_refuses_incomplete_and_duplicate_sets(tmp_path):
    m0 = run_shard("_test_synth", 0, 3, workers=1)
    with pytest.raises(ShardError, match="missing shard"):
        merge_shards(_write_set(tmp_path / "inc", [m0]))
    with pytest.raises(ShardError, match="duplicate shard"):
        merge_shards(_write_set(tmp_path / "dup", [m0, m0]))


def test_merge_refuses_code_drift(tmp_path, monkeypatch):
    import repro.experiments.cache as cache_mod

    dirs = _write_set(tmp_path, [run_shard("_test_synth", 0, 1, workers=1)])
    monkeypatch.setattr(cache_mod, "_code_version", lambda: "deadbeef")
    with pytest.raises(ShardError, match="request-key mismatch"):
        merge_shards(dirs)


def test_merge_refuses_empty_dir(tmp_path):
    with pytest.raises(ShardError, match="no shard manifests"):
        merge_shards([tmp_path])


# -- CLI ---------------------------------------------------------------------

def _cli(*argv):
    buf = io.StringIO()
    code = cli_main(list(argv), out=buf)
    return code, buf.getvalue()


def test_cli_shard_merge_roundtrip(tmp_path):
    serial = run_sweep("_test_synth", workers=1)
    for i in range(2):
        code, text = _cli("sweep", "_test_synth", "--shard", f"{i}/2",
                          "--out", str(tmp_path / f"s{i}"))
        assert code == 0
        assert f"shard {i}/2" in text
    code, text = _cli("sweep", "--merge", str(tmp_path / "s0"),
                      str(tmp_path / "s1"), "--out", str(tmp_path / "merged"))
    assert code == 0
    assert "merged 2 shard dir(s)" in text
    written = (tmp_path / "merged" / "_test_synth.json").read_text()
    assert written == serial.pretty_json()


def test_cli_merge_mismatch_exits_nonzero(tmp_path):
    _cli("sweep", "_test_synth", "--shard", "0/2", "--out", str(tmp_path / "s0"))
    _cli("sweep", "_test_synth", "--shard", "1/2", "--seed", "999",
         "--out", str(tmp_path / "s1"))
    code, text = _cli("sweep", "--merge", str(tmp_path / "s0"),
                      str(tmp_path / "s1"))
    assert code == 2
    assert "error:" in text and "mismatch" in text


def test_cli_shard_spec_errors(tmp_path):
    code, text = _cli("sweep", "_test_synth", "--shard", "9/2",
                      "--out", str(tmp_path))
    assert code == 2 and "malformed --shard" in text
    code, text = _cli("sweep", "_test_synth", "--shard", "0/2",
                      "--merge", str(tmp_path), "--out", str(tmp_path))
    assert code == 2 and "one at a time" in text


def test_cli_shard_refuses_flags_it_cannot_honor(tmp_path):
    """--compare/--cache/--no-save on a partial shard would be silently
    meaningless; the CLI rejects the combination instead."""
    for flag in (["--compare", str(tmp_path)], ["--cache"], ["--no-save"]):
        code, text = _cli("sweep", "_test_synth", "--shard", "0/2",
                          "--out", str(tmp_path), *flag)
        assert code == 2 and "only writes a shard manifest" in text
    assert not list(tmp_path.glob("*.shard-*"))  # nothing was written
