"""Persistent SweepPool: start-method resolution, worker reuse across
sweeps, registry-epoch respawn, and byte-neutrality of pooling."""

import multiprocessing

import pytest

from repro.experiments import Scenario, register, run_sweep
from repro.experiments.pool import (
    START_METHOD_ENV,
    SweepPool,
    resolve_start_method,
    shared_pool,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


# -- start-method resolution -------------------------------------------------

def test_resolve_prefers_fork_where_available(monkeypatch):
    monkeypatch.delenv(START_METHOD_ENV, raising=False)
    expected = "fork" if HAS_FORK else "spawn"
    assert resolve_start_method() == expected


def test_resolve_env_override(monkeypatch):
    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    assert resolve_start_method() == "spawn"
    # An explicit argument outranks the environment.
    if HAS_FORK:
        assert resolve_start_method("fork") == "fork"


def test_resolve_rejects_unsupported_method(monkeypatch):
    monkeypatch.setenv(START_METHOD_ENV, "threads")
    with pytest.raises(ValueError, match="threads.*available"):
        resolve_start_method()


def test_pool_validates_workers():
    with pytest.raises(ValueError):
        SweepPool(0)


# -- SweepResult metadata ----------------------------------------------------

def test_sweep_records_start_method_outside_canonical_bytes():
    serial = run_sweep("_test_synth", workers=1)
    assert serial.start_method is None
    parallel = run_sweep("_test_synth", workers=2)
    assert parallel.start_method == resolve_start_method()
    # Non-canonical: pooling metadata must never reach the frozen bytes.
    assert "start_method" not in parallel.canonical_json()
    assert parallel.canonical_json() == serial.canonical_json()


# -- worker reuse ------------------------------------------------------------

@pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
def test_explicit_pool_reuses_workers_across_sweeps():
    with SweepPool(2) as pool:
        first = run_sweep("_test_synth", workers=2, pool=pool)
        pids = pool.worker_pids()
        assert len(pids) == 2
        second = run_sweep("_test_synth", {"k": [1, 2, 5]}, pool=pool)
        assert pool.worker_pids() == pids  # same processes, no refork
        assert second.workers == 2  # pool size wins over the workers arg
    assert not pool.started  # context exit tore the workers down
    assert first.canonical_json() == run_sweep("_test_synth").canonical_json()


@pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
def test_shared_pool_is_one_object_per_size():
    assert shared_pool(2) is shared_pool(2)
    assert shared_pool(2) is not shared_pool(3)


@pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
def test_default_pool_capped_at_task_count():
    """A 9-point grid with a huge --workers must not fork idle workers:
    the default shared pool is sized min(workers, tasks)."""
    result = run_sweep("_test_synth", workers=32)
    pool = shared_pool(9)  # 9 grid points
    assert result.canonical_json() == run_sweep("_test_synth").canonical_json()
    assert 0 < len(pool.worker_pids()) <= 9


def _late_point(cfg):
    # Forked workers resolve this through the inherited registry — no
    # pickling, so a test-module function works.
    return {"y": cfg["k"] * cfg["scale"] + cfg["seed"] / 7.0 - 1234 / 7.0}


@pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
def test_shared_pool_respawns_when_registry_grows():
    pool = shared_pool(2)
    run_sweep("_test_synth", workers=2)  # warm it
    pids = pool.worker_pids()
    assert pids
    run_sweep("_test_synth", workers=2)
    assert pool.worker_pids() == pids  # stable registry -> stable workers

    register(Scenario(
        name="_test_pool_late",
        title="late registration",
        description="registered after the shared pool forked",
        run_point=_late_point,
        grid={"k": (1, 2, 3)},
        x="k",
        curves=("y",),
        defaults={"scale": 2.0},
    ), replace=True)
    # The forked workers snapshotted the old registry; the epoch bump
    # must respawn them so the late scenario resolves in workers.
    late = run_sweep("_test_pool_late", workers=2)
    assert late.series[0].ys == [2.0, 4.0, 6.0]
    assert pool.worker_pids() != pids
