"""Shared fixtures for the experiments tests.

Registers the synthetic driver-test scenario once per session;
``replace=True`` keeps re-imports (xdist, repeated collection) benign.
The point function is module-level so worker processes can resolve it
by reference under the fork start method.
"""

from repro.experiments import Scenario, register


def synthetic_point(cfg):
    # Pure arithmetic: exercises the fan-out machinery without simulation.
    return {"y": cfg["k"] * cfg["scale"] + cfg["seed"] / 7.0}


SYNTH = register(Scenario(
    name="_test_synth",
    title="synthetic",
    description="driver test scenario",
    run_point=synthetic_point,
    grid={"k": tuple(range(9))},
    x="k",
    curves=("y",),
    defaults={"scale": 3.0},
), replace=True)
