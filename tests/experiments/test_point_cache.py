"""Point-level incremental caching, the timing store + cost-aware
dispatch ordering, and cache pruning."""

import io
import json
import os

import pytest

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.cli import main as cli_main
from repro.experiments import get_scenario, run_sweep
from repro.experiments.cache import (
    PointCache,
    TimingStore,
    cache_path,
    cached_sweep,
    point_key,
    prune_cache,
    request_key,
)
from repro.experiments.driver import _order_tasks


# -- point keys --------------------------------------------------------------

def test_point_key_is_stable_and_cfg_sensitive():
    sc = get_scenario("_test_synth")
    cfg = sc.points()[0]
    assert point_key(sc, cfg) == point_key(sc, cfg)
    other = dict(cfg, k=999)
    assert point_key(sc, other) != point_key(sc, cfg)
    seeded = dict(cfg, seed=9)
    assert point_key(sc, seeded) != point_key(sc, cfg)


def test_point_key_tracks_modes_and_code_version(monkeypatch):
    import repro.experiments.cache as cache_mod

    sc = get_scenario("_test_synth")
    cfg = sc.points()[0]
    base = point_key(sc, cfg)
    assert point_key(sc, cfg, reference=True) != base
    assert point_key(sc, cfg, model_reference=True) != base
    monkeypatch.setattr(cache_mod, "_code_version", lambda: "deadbeef")
    assert point_key(sc, cfg) != base  # a new commit invalidates points


def test_point_key_ignores_grid_membership():
    """Adding/removing *other* grid values must not invalidate a point —
    that independence is the whole incremental-caching lever."""
    sc = get_scenario("_test_synth")
    wider = sc.with_overrides({"k": [0, 1, 2, 3, 99]})
    cfg = sc.points()[0]
    assert cfg in wider.points()
    assert point_key(sc, cfg) == point_key(wider, cfg)


# -- incremental re-sweeps ---------------------------------------------------

def test_grid_edit_reruns_only_changed_points(tmp_path):
    first, hit = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    assert not hit
    assert first.executed_points == 9 and first.cached_points == 0
    edited = get_scenario("_test_synth").with_overrides(
        {"k": [0, 1, 2, 3, 4, 5, 6, 7, 99]}
    )
    second, hit = cached_sweep(edited, workers=1, cache_dir=tmp_path)
    assert not hit  # the whole-sweep request changed...
    assert second.executed_points == 1  # ...but only one point ran
    assert second.cached_points == 8
    # Byte identity with a cache-free run: assembly from stored values
    # is invisible to persistence and goldens.
    fresh = run_sweep(edited, workers=1)
    assert second.canonical_json() == fresh.canonical_json()
    assert second.sha256() == fresh.sha256()


def test_default_tweak_reruns_everything(tmp_path):
    cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    edited = get_scenario("_test_synth").with_overrides({"scale": 4.0})
    second, _ = cached_sweep(edited, workers=1, cache_dir=tmp_path)
    assert second.executed_points == 9  # a default changes every cfg


def test_point_assembly_after_whole_sweep_entry_lost(tmp_path):
    """Deleting the whole-sweep entry still re-sweeps with zero executed
    points: every value assembles from the point cache."""
    sc = get_scenario("_test_synth")
    first, _ = cached_sweep(sc, workers=1, cache_dir=tmp_path)
    cache_path(tmp_path, sc, request_key(sc)).unlink()
    second, hit = cached_sweep(sc, workers=1, cache_dir=tmp_path)
    assert not hit
    assert second.executed_points == 0 and second.cached_points == 9
    assert second.canonical_json() == first.canonical_json()
    assert all(p.get("cached") for p in second.points)
    assert "cached" not in second.canonical_json()


def test_corrupt_point_entry_is_a_miss(tmp_path):
    sc = get_scenario("_test_synth")
    cache = PointCache(tmp_path)
    key, miss = cache.lookup(sc, sc.points()[0])
    assert miss is None
    path = cache.store(sc.name, key, {"y": 1.5})
    assert cache.get(sc.name, key) == {"y": 1.5}
    path.write_text("{ not json")
    assert cache.get(sc.name, key) is None
    # A key mismatch (prefix collision) is also a miss, never a wrong hit.
    cache.store(sc.name, key, {"y": 1.5})
    entry = json.loads(path.read_text())
    entry["key"] = "f" * 64
    path.write_text(json.dumps(entry))
    assert cache.get(sc.name, key) is None


def test_parallel_incremental_resweep_matches_serial(tmp_path):
    cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    edited = get_scenario("_test_synth").with_overrides(
        {"k": [0, 2, 4, 6, 8, 50, 60]}
    )
    par, _ = cached_sweep(edited, workers=4, cache_dir=tmp_path)
    assert par.executed_points == 2 and par.cached_points == 5
    assert par.canonical_json() == run_sweep(edited, workers=1).canonical_json()


# -- timing store + dispatch order -------------------------------------------

def test_timing_store_roundtrip(tmp_path):
    sc = get_scenario("_test_synth")
    cfg = sc.points()[0]
    store = TimingStore(tmp_path)
    key = store.key(sc, cfg)
    assert store.estimate(key) is None
    store.record(key, 1.25)
    store.flush()
    reloaded = TimingStore(tmp_path)
    assert reloaded.estimate(key) == 1.25
    # Modes change the key: the reference loops have different costs.
    assert store.key(sc, cfg, reference=True) != key


def test_timing_store_caps_entries(tmp_path):
    store = TimingStore(tmp_path, max_entries=3)
    for i in range(6):
        store.record(f"{i:016x}" + "0" * 48, float(i))
    store.flush()
    data = json.loads((tmp_path / "timings.json").read_text())["elapsed_s"]
    assert len(data) == 3
    assert set(data.values()) == {3.0, 4.0, 5.0}  # newest survive


def test_timing_store_recency_survives_reload(tmp_path):
    """Eviction order must be least-recently-updated *across sessions*:
    the on-disk file preserves insertion order, so refreshing an old
    entry protects it from the cap after a reload."""
    store = TimingStore(tmp_path, max_entries=2)
    keys = [f"{i:016x}" + "0" * 48 for i in range(3)]
    store.record(keys[0], 1.0)
    store.record(keys[1], 2.0)
    store.flush()
    second = TimingStore(tmp_path, max_entries=2)
    second.record(keys[0], 9.0)  # refresh the oldest...
    second.record(keys[2], 3.0)  # ...then push past the cap
    second.flush()
    third = TimingStore(tmp_path, max_entries=2)
    assert third.estimate(keys[1]) is None  # the stale entry fell out
    assert third.estimate(keys[0]) == 9.0
    assert third.estimate(keys[2]) == 3.0


def test_order_tasks_longest_first_unknown_leading():
    tasks = [("s", i, {}, False, False) for i in range(5)]
    costs = {0: 0.1, 2: 5.0, 4: 1.0}  # 1 and 3 unknown
    ordered = _order_tasks(tasks, lambda t: costs.get(t[1]))
    assert [t[1] for t in ordered] == [1, 3, 2, 4, 0]


def test_recorded_timings_change_dispatch_not_bytes(tmp_path):
    serial = run_sweep("_test_synth", workers=1)
    first, _ = cached_sweep("_test_synth", workers=2, cache_dir=tmp_path)
    assert (tmp_path / "timings.json").exists()
    # Second parallel run dispatches longest-recorded-first; bytes and
    # point order in the result are untouched.
    (cache_path(tmp_path, get_scenario("_test_synth"),
                request_key(get_scenario("_test_synth")))).unlink()
    for p in (tmp_path / "points").glob("*.json"):
        p.unlink()
    second, _ = cached_sweep("_test_synth", workers=2, cache_dir=tmp_path)
    assert second.executed_points == 9
    assert second.canonical_json() == serial.canonical_json()


# -- pruning -----------------------------------------------------------------

def _touch(path, age_s, now):
    os.utime(path, (now - age_s, now - age_s))


def test_prune_by_age(tmp_path):
    import time

    now = time.time()
    sc = get_scenario("_test_synth")
    result, _ = cached_sweep(sc, workers=1, cache_dir=tmp_path)
    entries = sorted(tmp_path.glob("*.json")) + sorted((tmp_path / "points").glob("*.json"))
    old = [p for p in entries if p.name != "timings.json"][:4]
    for p in old:
        _touch(p, 10 * 86_400, now)
    stats = prune_cache(tmp_path, max_age_days=5, now=now)
    assert stats.removed == 4
    assert stats.freed_bytes > 0
    for p in old:
        assert not p.exists()
    assert (tmp_path / "timings.json").exists()  # advisory file exempt


def test_prune_by_bytes_keeps_newest(tmp_path):
    import time

    now = time.time()
    for i in range(5):
        path = tmp_path / f"synth-{i:016x}.json"
        path.write_text(json.dumps({"format": 1, "key": "x", "values": {}}))
        _touch(path, (5 - i) * 3600, now)  # i=4 newest
    keep = (tmp_path / "synth-0000000000000004.json").stat().st_size
    stats = prune_cache(tmp_path, max_bytes=keep, now=now)
    assert stats.removed == 4 and stats.kept == 1
    assert (tmp_path / "synth-0000000000000004.json").exists()


def test_prune_without_criteria_reports_only(tmp_path):
    cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    stats = prune_cache(tmp_path)
    assert stats.removed == 0
    assert stats.kept == stats.scanned > 0


def test_cli_cache_prune(tmp_path):
    out_dir = tmp_path / "results"
    buf = io.StringIO()
    code = cli_main(["sweep", "fig2", "--grid", "size_mb=1",
                     "--out", str(out_dir), "--cache"], out=buf)
    assert code == 0
    buf = io.StringIO()
    code = cli_main(["sweep", "--cache-prune", "--max-age-days", "0",
                     "--out", str(out_dir)], out=buf)
    assert code == 0
    assert "cache prune" in buf.getvalue()
    assert "removed" in buf.getvalue()
    assert not list((out_dir / ".cache").glob("*-*.json"))


# -- mode interaction --------------------------------------------------------

def test_point_cache_respects_engine_and_model_modes(tmp_path):
    """Reference-mode sweeps never reuse fast-mode points (and vice
    versa): the per-point key includes both flags."""
    first, _ = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    prev = engine.set_reference_mode(True)
    try:
        ref, hit = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    finally:
        engine.set_reference_mode(prev)
    assert not hit and ref.executed_points == 9
    prev = modelmode.set_model_reference(True)
    try:
        mod, hit = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    finally:
        modelmode.set_model_reference(prev)
    assert not hit and mod.executed_points == 9


# -- concurrent access (a daemon racing a prune or another sweep) ------------

def test_point_get_tolerates_entry_vanishing_into_unreadability(tmp_path):
    """exists() said yes but the read fails (pruned and replaced between
    check and read): a miss, never an exception or a wrong hit."""
    sc = get_scenario("_test_synth")
    cache = PointCache(tmp_path)
    key, _ = cache.lookup(sc, sc.points()[0])
    path = cache.store(sc.name, key, {"y": 2.0})
    path.unlink()
    path.mkdir()  # exists() is True, read_text() raises OSError
    assert cache.get(sc.name, key) is None


def test_load_cached_tolerates_unreadable_entry(tmp_path):
    from repro.experiments.cache import load_cached, store_cached

    sc = get_scenario("_test_synth")
    result, _ = cached_sweep(sc, workers=1, cache_dir=tmp_path)
    key = request_key(sc)
    path = cache_path(tmp_path, sc, key)
    assert load_cached(tmp_path, sc, key) is not None
    path.unlink()
    path.mkdir()
    assert load_cached(tmp_path, sc, key) is None


def test_prune_tolerates_entries_vanishing_mid_scan(tmp_path, monkeypatch):
    """An entry deleted between the directory listing and its stat (a
    racing daemon or second pruner) is skipped, not fatal."""
    from pathlib import Path

    cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    victims = {p.name for p in list(tmp_path.glob("*-*.json"))[:1]} | \
        {p.name for p in list((tmp_path / "points").glob("*.json"))[:2]}
    assert len(victims) == 3
    real_stat = Path.stat

    def racing_stat(self, **kw):
        if self.name in victims:
            raise FileNotFoundError(str(self))
        return real_stat(self, **kw)

    monkeypatch.setattr(Path, "stat", racing_stat)
    stats = prune_cache(tmp_path, max_age_days=0.0, now=__import__("time").time() + 10)
    # The three racing entries were skipped; everything else pruned.
    assert stats.removed == stats.scanned
    assert stats.scanned > 0


def test_prune_tolerates_unlink_races(tmp_path, monkeypatch):
    """Losing the unlink race (the other pruner got there first) counts
    the entry as already gone instead of crashing."""
    from pathlib import Path

    cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    real_unlink = Path.unlink
    stolen = []

    def racing_unlink(self, **kw):
        if self.suffix == ".json" and not stolen:
            stolen.append(self.name)
            real_unlink(self)  # the racing pruner wins...
            raise FileNotFoundError(str(self))  # ...and we lose
        return real_unlink(self, **kw)

    monkeypatch.setattr(Path, "unlink", racing_unlink)
    stats = prune_cache(tmp_path, max_age_days=0.0,
                        now=__import__("time").time() + 10)
    assert stolen  # the race actually happened
    assert stats.removed == stats.scanned - 1


def test_store_get_prune_thread_stress(tmp_path):
    """A writer/reader thread races a pruning thread over one cache
    directory; nothing may raise and reads are always a hit with the
    stored values or a clean miss."""
    import threading

    sc = get_scenario("_test_synth")
    cache = PointCache(tmp_path)
    cfgs = sc.points()
    errors = []
    stop = threading.Event()

    def churn():
        try:
            for round_ in range(30):
                for cfg in cfgs:
                    key, hit = cache.lookup(sc, cfg)
                    if hit is not None and hit != {"y": 1.0}:
                        errors.append(f"torn read: {hit}")
                    cache.store(sc.name, key, {"y": 1.0})
        except Exception as exc:  # noqa: BLE001
            errors.append(f"churn: {type(exc).__name__}: {exc}")
        finally:
            stop.set()

    def pruner():
        import time as time_mod

        try:
            while not stop.is_set():
                prune_cache(tmp_path, max_age_days=0.0,
                            now=time_mod.time() + 10)
        except Exception as exc:  # noqa: BLE001
            errors.append(f"prune: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=churn), threading.Thread(target=pruner)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
