"""Unit tests for the declarative scenario layer (grid, overrides,
canonical point order, deterministic assembly)."""

import pytest

from repro.experiments import (
    GridError,
    Scenario,
    get_scenario,
    parse_grid_overrides,
    scenario_names,
)


def _toy_point(cfg):
    return {"a": cfg["k"] * 10.0 + cfg["seed"] * 0, "b": cfg["k"] + cfg["off"]}


def _toy(**kw):
    base = dict(
        name="toy",
        title="Toy: off={off}",
        description="test scenario",
        run_point=_toy_point,
        grid={"k": (1, 2, 3)},
        x="k",
        curves=("a", "b"),
        defaults={"off": 100.0},
    )
    base.update(kw)
    return Scenario(**base)


# -- registry ----------------------------------------------------------------


def test_builtin_registry_covers_every_figure():
    names = scenario_names()
    for fig in ("fig2", "fig4", "fig5", "fig6", "fig7", "fig8"):
        assert fig in names
    for extension in ("hetero", "faults", "gpu", "skew"):
        assert extension in names


def test_unknown_scenario_names_known_ones():
    with pytest.raises(KeyError, match="fig8"):
        get_scenario("nope")


def test_figure_scenarios_declare_paper_grids():
    assert get_scenario("fig8").grid["nodes"] == (4, 8, 16, 32, 64)
    assert get_scenario("fig5").defaults["data_gb"] == 120.0
    assert get_scenario("fig7").defaults["nodes"] == 50


# -- validation --------------------------------------------------------------


def test_scenario_rejects_empty_grid():
    with pytest.raises(GridError):
        _toy(grid={})


def test_scenario_rejects_x_not_in_grid():
    with pytest.raises(GridError):
        _toy(x="off")


def test_scenario_rejects_reserved_seed_param():
    with pytest.raises(GridError):
        _toy(defaults={"seed": 1})


def test_scenario_rejects_param_in_grid_and_defaults():
    with pytest.raises(GridError):
        _toy(defaults={"k": 5})


# -- overrides ---------------------------------------------------------------


def test_override_grid_values_cast_to_existing_type():
    sc = _toy().with_overrides({"k": ["5", "7"]})
    assert sc.grid["k"] == (5, 7)
    assert all(isinstance(v, int) for v in sc.grid["k"])


def test_override_default_scalar():
    sc = _toy().with_overrides({"off": "3"})
    assert sc.defaults["off"] == 3.0
    assert sc.format_title() == "Toy: off=3.0"


def test_override_default_rejects_value_list():
    with pytest.raises(GridError, match="one value"):
        _toy().with_overrides({"off": ["1", "2"]})


def test_override_unknown_parameter_lists_known():
    with pytest.raises(GridError, match="known: k, off"):
        _toy().with_overrides({"nodez": [4]})


def test_override_seed():
    sc = _toy().with_overrides(None, seed=99)
    assert sc.seed == 99
    assert all(cfg["seed"] == 99 for cfg in sc.points())


# -- points ------------------------------------------------------------------


def test_points_are_row_major_and_fully_bound():
    sc = _toy(grid={"k": (1, 2), "m": (10, 20)})
    pts = sc.points()
    assert [(p["k"], p["m"]) for p in pts] == [(1, 10), (1, 20), (2, 10), (2, 20)]
    assert all(p["off"] == 100.0 and p["seed"] == 1234 for p in pts)


# -- assembly ----------------------------------------------------------------


def test_assemble_orders_curves_as_declared():
    sc = _toy()
    results = [{"b": i + 0.5, "a": i * 1.0} for i in range(3)]
    series = sc.assemble(results)
    assert [s.label for s in series] == ["a", "b"]
    assert series[0].xs == [1.0, 2.0, 3.0]
    assert series[0].ys == [0.0, 1.0, 2.0]
    assert series[1].ys == [0.5, 1.5, 2.5]


def test_assemble_multi_param_grid_splits_series_per_combo():
    sc = _toy(grid={"k": (1, 2), "m": (10, 20)})
    results = [{"a": 1.0, "b": 2.0}] * 4
    series = sc.assemble(results)
    labels = [s.label for s in series]
    assert labels == ["a [m=10]", "a [m=20]", "b [m=10]", "b [m=20]"]
    assert all(s.xs == [1.0, 2.0] for s in series)


def test_assemble_rejects_wrong_result_count():
    with pytest.raises(ValueError, match="results for"):
        _toy().assemble([{"a": 1.0, "b": 2.0}])


def test_assemble_rejects_missing_curve():
    with pytest.raises(ValueError, match="missing curves"):
        _toy().assemble([{"a": 1.0}] * 3)


# -- --grid parsing ----------------------------------------------------------


def test_parse_grid_overrides():
    assert parse_grid_overrides(["nodes=4,8", "samples=1e9"]) == {
        "nodes": ["4", "8"],
        "samples": ["1e9"],
    }


@pytest.mark.parametrize("bad", ["nodes", "=4", "nodes=", "nodes=,,"])
def test_parse_grid_overrides_rejects_malformed(bad):
    with pytest.raises(GridError):
        parse_grid_overrides([bad])
