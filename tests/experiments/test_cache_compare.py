"""Scenario result caching and sweep drift reports."""

import json

import pytest

import repro.sim.engine as engine
from repro.experiments import get_scenario, run_sweep, save_sweep
from repro.experiments.cache import (
    cache_path,
    cached_sweep,
    load_cached,
    request_key,
    store_cached,
)
from repro.experiments.compare import compare_result_to_dir
from repro.cli import main


# -- cache keys --------------------------------------------------------------

def test_request_key_is_stable_and_sensitive():
    sc = get_scenario("_test_synth")
    assert request_key(sc) == request_key(sc)
    assert request_key(sc.with_overrides({"k": [1, 2]})) != request_key(sc)
    assert request_key(sc.with_overrides(None, seed=9)) != request_key(sc)
    assert request_key(sc, reference=True) != request_key(sc, reference=False)


def test_cached_sweep_miss_then_hit(tmp_path):
    fresh, hit = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    assert not hit
    again, hit = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    assert hit
    # The reconstructed result carries the same canonical bytes — the
    # whole point: persistence and goldens can't tell it ran from cache.
    assert again.canonical_json() == fresh.canonical_json()
    assert again.pretty_json() == fresh.pretty_json()
    assert again.sha256() == fresh.sha256()
    assert again.workers == 0  # nothing actually ran


def test_cache_misses_on_seed_change(tmp_path):
    _, hit1 = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    _, hit2 = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path, seed=9)
    assert not hit1 and not hit2
    _, hit3 = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path, seed=9)
    assert hit3


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    sc = get_scenario("_test_synth")
    result = run_sweep(sc, workers=1)
    key = request_key(sc)
    path = store_cached(result, tmp_path, key)
    path.write_text("{ not json")
    assert load_cached(tmp_path, sc, key) is None
    # A rerun through the wrapper heals the entry.
    healed, hit = cached_sweep(sc, workers=1, cache_dir=tmp_path)
    assert not hit
    assert load_cached(tmp_path, sc, key) is not None
    assert cache_path(tmp_path, sc, key) == path


def test_cache_key_tracks_engine_mode(tmp_path):
    _, hit = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    prev = engine.set_reference_mode(True)
    try:
        _, hit_ref = cached_sweep("_test_synth", workers=1, cache_dir=tmp_path)
    finally:
        engine.set_reference_mode(prev)
    assert not hit and not hit_ref  # distinct entries per engine mode


# -- drift reports -----------------------------------------------------------

def test_compare_clean_when_results_identical(tmp_path):
    result = run_sweep("_test_synth", workers=1)
    save_sweep(result, tmp_path)
    report = compare_result_to_dir(result, tmp_path)
    assert not report.has_drift
    assert "no drift" in report.format()


def test_compare_detects_value_drift(tmp_path):
    result = run_sweep("_test_synth", workers=1)
    save_sweep(result, tmp_path)
    stored = json.loads((tmp_path / "_test_synth.json").read_text())
    stored["series"][0]["ys"][2] += 0.5
    (tmp_path / "_test_synth.json").write_text(json.dumps(stored))
    report = compare_result_to_dir(result, tmp_path)
    assert report.has_drift
    text = report.format()
    assert "DRIFT" in text and "1/9 points differ" in text
    assert "x=2" in text


def test_compare_detects_structural_drift(tmp_path):
    result = run_sweep("_test_synth", workers=1)
    save_sweep(result, tmp_path)
    stored = json.loads((tmp_path / "_test_synth.json").read_text())
    stored["series"][0]["label"] = "renamed"
    (tmp_path / "_test_synth.json").write_text(json.dumps(stored))
    report = compare_result_to_dir(result, tmp_path)
    assert report.has_drift
    assert "absent from old" in report.format()
    assert "absent from new" in report.format()


def test_compare_nan_points_count_but_finite_worst_wins(tmp_path):
    """NaN drift anchors the report (no crash) yet never hides a real
    deviation appearing later."""
    result = run_sweep("_test_synth", workers=1)
    save_sweep(result, tmp_path)
    stored = json.loads((tmp_path / "_test_synth.json").read_text())
    stored["series"][0]["ys"][0] = float("nan")  # NaN drifts first...
    stored["series"][0]["ys"][3] += 50.0         # ...finite drift later
    (tmp_path / "_test_synth.json").write_text(json.dumps(stored))
    report = compare_result_to_dir(result, tmp_path)
    assert report.has_drift
    text = report.format()
    assert "2/9 points differ" in text
    assert "x=3" in text and "|Δ|=50" in text  # the finite worst, not the NaN


def test_request_key_includes_code_version(monkeypatch):
    import repro.experiments.cache as cache_mod

    sc = get_scenario("_test_synth")
    base = request_key(sc)
    monkeypatch.setattr(cache_mod, "_code_version", lambda: "deadbeef")
    assert request_key(sc) != base  # a new commit invalidates the cache


def test_compare_missing_old_result_is_drift(tmp_path):
    result = run_sweep("_test_synth", workers=1)
    report = compare_result_to_dir(result, tmp_path)
    assert report.has_drift
    assert "no stored result" in report.format()


# -- CLI integration ---------------------------------------------------------

def run_cli(tmp_path, *argv):
    import io

    out = io.StringIO()
    code = main([*argv], out=out)
    return code, out.getvalue()


def test_cli_sweep_cache_and_compare_roundtrip(tmp_path):
    out_dir = tmp_path / "results"
    args = ["sweep", "fig2", "--grid", "size_mb=1", "--out", str(out_dir)]
    code, text = run_cli(tmp_path, *args, "--cache")
    assert code == 0 and "cache hit" not in text
    code, text = run_cli(tmp_path, *args, "--cache")
    assert code == 0 and "cache hit" in text
    # Clean compare: the stored results match a fresh run.
    code, text = run_cli(tmp_path, *args, "--no-save", "--compare", str(out_dir))
    assert code == 0 and "no drift" in text
    # Poison the stored series: compare exits 3.
    stored = json.loads((out_dir / "fig2.json").read_text())
    stored["series"][0]["ys"][0] *= 2
    (out_dir / "fig2.json").write_text(json.dumps(stored))
    code, text = run_cli(tmp_path, *args, "--no-save", "--compare", str(out_dir))
    assert code == 3 and "DRIFT DETECTED" in text
