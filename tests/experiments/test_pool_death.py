"""A SIGKILLed pool worker must not wedge or corrupt a sweep.

``multiprocessing.Pool`` replaces a killed worker process, but the task
that worker was running silently never completes — before
``SweepPool.reap_dead``/``run_tasks`` a sweep would hang forever
waiting for it. The regression here kills a live worker mid-sweep and
requires the sweep to (a) finish, (b) notice the death, and (c) produce
bytes identical to a serial run — re-dispatch and deduplication must be
invisible in the canonical output.
"""

import os
import signal
import threading
import time

from repro.experiments import Scenario, register, run_sweep
from repro.experiments.pool import SweepPool


def death_slow_point(cfg):
    time.sleep(cfg["delay_s"])
    return {"y": cfg["k"] * 5.0 + cfg["seed"] / 13.0}


SLOW = register(Scenario(
    name="_death_slow",
    title="pool-death scenario",
    description="sleeps per point so a kill lands mid-task",
    run_point=death_slow_point,
    grid={"k": tuple(range(8))},
    x="k",
    curves=("y",),
    defaults={"delay_s": 0.25},
), replace=True)


def test_sweep_survives_sigkilled_worker():
    serial = run_sweep("_death_slow", workers=1)
    with SweepPool(2) as pool:
        # Warm the pool on a cheap two-point grid so worker pids exist
        # before the kill is scheduled (one task would run in-process).
        run_sweep("_death_slow", {"k": [0, 1], "delay_s": 0.0}, pool=pool)
        victims = pool.worker_pids()
        assert len(victims) == 2
        killer = threading.Timer(
            0.4, lambda: os.kill(victims[0], signal.SIGKILL))
        killer.start()
        try:
            result = run_sweep("_death_slow", pool=pool)
        finally:
            killer.cancel()
        assert pool.deaths_detected >= 1, "the kill was never detected"
    assert result.canonical_json() == serial.canonical_json()
    assert result.sha256() == serial.sha256()


def test_reap_dead_is_quiet_on_a_healthy_pool():
    with SweepPool(2) as pool:
        assert not pool.reap_dead()  # not even started
        run_sweep("_death_slow", {"k": [0, 1], "delay_s": 0.0}, pool=pool)
        assert not pool.reap_dead()
        assert pool.deaths_detected == 0
