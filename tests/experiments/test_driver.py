"""Driver tests: deterministic aggregation, worker invariance, and the
registry path matching a hand-rolled serial reproduction."""

import json

import pytest

from repro.core import run_pi_job
from repro.experiments import Scenario, run_sweep
from repro.perf import Backend

#: Small enough to keep tier-1 fast; big enough to cross worker chunks.
FIG8_SMALL = {"nodes": [2, 4], "samples": 1e9}


def test_serial_and_parallel_sweeps_are_byte_identical():
    serial = run_sweep("_test_synth", workers=1)
    for workers in (2, 4):
        par = run_sweep("_test_synth", workers=workers)
        assert par.canonical_json() == serial.canonical_json()
        assert par.sha256() == serial.sha256()


def test_parallel_fig8_matches_hand_rolled_serial_loop():
    """The registry's fig8 must reproduce the pre-registry serial code
    path exactly: direct run_pi_job calls in a plain loop."""
    result = run_sweep("fig8", FIG8_SMALL, workers=2)
    expected = {}
    for label, mult, backend in (
        ("Java Mapper", 1, Backend.JAVA_PPE),
        ("Cell BE Mapper", 1, Backend.CELL_SPE_DIRECT),
        ("Cell BE Mapper (10x)", 10, Backend.CELL_SPE_DIRECT),
    ):
        expected[label] = [
            run_pi_job(n, 1e9 * mult, backend, seed=1234).makespan_s
            for n in (2, 4)
        ]
    for s in result.series:
        assert s.ys == expected[s.label], s.label
    # Bit-for-bit, not approximately: serialize both through JSON.
    assert json.dumps([s.ys for s in result.series]) == json.dumps(
        [expected[s.label] for s in result.series]
    )


def test_seed_override_threads_into_every_point():
    r = run_sweep("_test_synth", seed=70)
    assert r.seed == 70
    assert r.series[0].ys[0] == 0 * 3.0 + 10.0


def test_progress_callback_reports_every_point():
    seen = []
    run_sweep("_test_synth", workers=2, progress=lambda d, t: seen.append((d, t)))
    assert seen[-1] == (9, 9)
    assert [d for d, _ in seen] == list(range(1, 10))


def test_workers_validation():
    with pytest.raises(ValueError):
        run_sweep("_test_synth", workers=0)


def test_points_recorded_in_canonical_grid_order():
    r = run_sweep("_test_synth", {"k": [3, 1, 2]}, workers=4)
    assert [p["params"]["k"] for p in r.points] == [3, 1, 2]
    assert r.series[0].xs == [3.0, 1.0, 2.0]
    assert all("seed" not in p["params"] for p in r.points)


def test_unregistered_scenario_instance_runs_serially():
    from repro.experiments import get_scenario

    sc = Scenario(
        name="_unregistered",
        title="t",
        description="d",
        run_point=get_scenario("_test_synth").run_point,
        grid={"k": (1, 2)},
        x="k",
        curves=("y",),
        defaults={"scale": 1.0},
    )
    r = run_sweep(sc, workers=1)
    assert r.series[0].ys == [1 + 1234 / 7.0, 2 + 1234 / 7.0]
