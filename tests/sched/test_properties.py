"""Property tests over the scheduling subsystem (hypothesis).

Every placement policy, under random multi-job workload shapes, must
preserve the runtime's core invariants: every job completes, every task
is done exactly once (no task assigned twice absent speculation), work
is conserved, and tasks only ever ran on registered blades. Fair
sharing additionally has a quantitative obligation: concurrent
equal-weight jobs hold approximately equal cluster shares while both
are backlogged.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simexec import SimulatedCluster, run_workload_mix
from repro.hadoop import JobConf
from repro.hadoop.job import JobState, TaskKind
from repro.perf import Backend, PAPER_CALIBRATION

CAL = PAPER_CALIBRATION
POLICIES = ["fifo", "fair", "locality", "accel"]


@given(
    policy=st.sampled_from(POLICIES),
    nodes=st.integers(min_value=1, max_value=4),
    num_jobs=st.integers(min_value=1, max_value=3),
    stagger=st.sampled_from([0.0, 5.0]),
    accel_frac=st.sampled_from([0.5, 1.0]),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_multijob_completes_under_every_policy(
    policy, nodes, num_jobs, stagger, accel_frac, seed
):
    """Any policy × any workload shape: everything finishes, exactly once."""
    mix = run_workload_mix(
        nodes, num_jobs=num_jobs, scheduler=policy, stagger_s=stagger,
        data_gb=0.5, samples=5e8, accelerated_fraction=accel_frac, seed=seed,
    )
    assert mix.succeeded
    for result in mix.results:
        assert result.state is JobState.SUCCEEDED
        assert all(t.state == "done" for t in result.tasks)
        # No task assigned twice: speculation is off in the mix, so each
        # task ran exactly one attempt.
        assert all(t.attempts == 1 for t in result.tasks)
        # Work conservation for the compute-driven jobs.
        maps = [t for t in result.tasks if t.kind is TaskKind.MAP]
        if result.workload == "pi":
            total = sum(t.samples for t in maps)
            assert abs(total - 5e8) <= 1e-9 * 5e8
        else:
            assert result.counters["map_input_bytes"] == 0.5 * 1024**3
        # Temporal sanity inside the job's own window.
        for t in result.tasks:
            assert result.submit_time <= t.start_time <= t.end_time


@given(
    policy=st.sampled_from(POLICIES),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=8, deadline=None)
def test_speculation_stays_exactly_once_in_results(policy, seed):
    """With speculation on and a straggler, duplicates may launch but
    each task is still *done* exactly once and the job completes."""
    sim = SimulatedCluster(3, seed=seed, slow_nodes={1: 6.0}, scheduler=policy)
    conf = JobConf(
        name="spec", workload="pi", backend=Backend.CELL_SPE_DIRECT,
        samples=2e9, num_map_tasks=6, num_reduce_tasks=1, speculative=True,
    )
    result = sim.run_job(conf)
    assert result.state is JobState.SUCCEEDED
    assert all(t.state == "done" for t in result.tasks)
    done_maps = sum(1 for t in result.tasks if t.kind is TaskKind.MAP)
    assert done_maps == 6


def test_live_attempt_tally_drains_after_speculation_kills():
    """Killed speculative duplicates report nothing back; the JobTracker
    must retire their load accounting anyway, or fair shares skew for
    the rest of the run."""
    sim = SimulatedCluster(3, seed=21, slow_nodes={1: 6.0}, scheduler="fair")
    conf = JobConf(
        name="kill", workload="pi", backend=Backend.CELL_SPE_DIRECT,
        samples=2e9, num_map_tasks=6, num_reduce_tasks=1, speculative=True,
    )
    result = sim.run_job(conf)
    assert result.succeeded
    assert result.counters.get("speculative_attempts", 0) >= 1
    # Every attempt — finished, failed, or killed — is accounted for.
    assert all(v == 0 for v in sim.jobtracker._live_attempts.values())


def test_fair_share_bounds_between_equal_jobs():
    """While two equal-weight jobs are both backlogged, the fair policy
    keeps their live-slot shares within one heartbeat batch of each
    other (per-exchange granularity is the attainable bound)."""
    sim = SimulatedCluster(4, seed=11, scheduler="fair")
    conf = JobConf(name="fs", workload="pi", backend=Backend.CELL_SPE_DIRECT,
                   samples=4e10, num_map_tasks=32, num_reduce_tasks=0)
    samples: list[tuple[int, int]] = []
    jt = sim.jobtracker

    def _monitor():
        while True:
            yield sim.env.timeout(CAL.heartbeat_interval_s)
            pending_a = len(jt._pending_maps.get(0, ()))
            pending_b = len(jt._pending_maps.get(1, ()))
            if pending_a > 0 and pending_b > 0:
                samples.append((jt._live_attempts.get(0, 0),
                                jt._live_attempts.get(1, 0)))

    sim.start()
    sim.env.process(_monitor(), name="fair-share-monitor")
    results = sim.run_jobs([conf, conf.evolve(name="fs2")])
    assert all(r.succeeded for r in results)
    assert samples, "jobs never overlapped with backlog — weak test setup"
    slots_per_exchange = CAL.mappers_per_node
    for a, b in samples:
        assert abs(a - b) <= slots_per_exchange, (a, b)
    # And the shares are substantial, not 1-vs-all-the-rest.
    avg_a = sum(a for a, _ in samples) / len(samples)
    avg_b = sum(b for _, b in samples) / len(samples)
    assert avg_a > 0 and avg_b > 0
    assert 0.5 <= avg_a / avg_b <= 2.0


def test_weighted_fair_share_ratio():
    """A 3:1 weight split yields roughly a 3:1 time-averaged slot split
    while both jobs are backlogged."""
    sim = SimulatedCluster(4, seed=13, scheduler="fair")
    heavy = JobConf(name="heavy", workload="pi", backend=Backend.CELL_SPE_DIRECT,
                    samples=4e10, num_map_tasks=32, num_reduce_tasks=0,
                    weight=3.0)
    light = heavy.evolve(name="light", weight=1.0)
    samples: list[tuple[int, int]] = []
    jt = sim.jobtracker

    def _monitor():
        while True:
            yield sim.env.timeout(CAL.heartbeat_interval_s)
            if jt._pending_maps.get(0) and jt._pending_maps.get(1):
                samples.append((jt._live_attempts.get(0, 0),
                                jt._live_attempts.get(1, 0)))

    sim.start()
    sim.env.process(_monitor(), name="weighted-share-monitor")
    results = sim.run_jobs([heavy, light])
    assert all(r.succeeded for r in results)
    assert samples
    avg_heavy = sum(a for a, _ in samples) / len(samples)
    avg_light = sum(b for _, b in samples) / len(samples)
    assert avg_light > 0
    ratio = avg_heavy / avg_light
    assert 2.0 <= ratio <= 4.5, ratio
