"""FIFO-extraction equivalence and JobTracker↔policy integration.

The strongest equivalence evidence lives in ``tests/golden``: the
refactored JobTracker + extracted FifoScheduler reproduce the frozen
pre-refactor series byte for byte, in both engine modes and at 1/2/4
sweep workers. These tests add the task-level view: identical
*assignment traces* across every way of selecting FIFO, plus the policy
plumbing (selection routes, validation, misbehaving policies).
"""

import pytest

import repro.sim.engine as engine
from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf
from repro.hadoop.job import TaskKind
from repro.perf import Backend
from repro.sched import FifoScheduler, Scheduler, SchedulerError, TaskChoice
from repro.sched.base import register_scheduler


def _pi_conf(**kw):
    return JobConf(name="equiv", workload="pi", backend=Backend.CELL_SPE_DIRECT,
                   samples=2e9, num_map_tasks=8, num_reduce_tasks=1, **kw)


def _assignment_trace(scheduler=None, reference=False, conf=None):
    """(time, job, kind, task, tracker) of every task_assigned event."""
    prev = engine.set_reference_mode(reference)
    try:
        sim = SimulatedCluster(4, seed=99, trace=True, scheduler=scheduler)
        result = sim.run_job(conf if conf is not None else _pi_conf())
        assert result.succeeded
        return [
            (r.time, r.attrs["job"], r.attrs["kind"], r.attrs["task"],
             r.attrs["tracker"])
            for r in sim.cluster.tracer.records
            if r.event == "task_assigned"
        ], result.makespan_s
    finally:
        engine.set_reference_mode(prev)


def test_every_fifo_selection_route_is_trace_identical():
    baseline, makespan = _assignment_trace(scheduler=None)
    assert len(baseline) == 9  # 8 maps + 1 reduce
    for route in ("fifo", FifoScheduler, FifoScheduler()):
        trace, ms = _assignment_trace(scheduler=route)
        assert trace == baseline
        assert ms == makespan
    # JobConf-level request resolves to the same policy.
    trace, ms = _assignment_trace(conf=_pi_conf(scheduler="fifo"))
    assert trace == baseline and ms == makespan


def test_fast_and_reference_engines_assign_identically():
    fast, fast_ms = _assignment_trace(reference=False)
    ref, ref_ms = _assignment_trace(reference=True)
    assert fast == ref
    assert fast_ms == ref_ms


def test_speculative_golden_path_unchanged():
    """Speculation decisions (the subtlest extracted logic) survive the
    refactor: with a straggler node the FIFO policy still launches
    duplicates, and the job still finishes."""
    prev = engine.set_reference_mode(False)
    try:
        sim = SimulatedCluster(4, seed=7, slow_nodes={1: 8.0})
        result = sim.run_job(_pi_conf(speculative=True))
    finally:
        engine.set_reference_mode(prev)
    assert result.succeeded
    assert result.counters.get("speculative_attempts", 0) >= 1


# -- policy plumbing ---------------------------------------------------------

def test_set_scheduler_rejected_after_submission():
    sim = SimulatedCluster(2, seed=1)
    sim.start()
    sim.jobtracker.submit_job(_pi_conf())
    with pytest.raises(RuntimeError, match="after jobs"):
        sim.jobtracker.set_scheduler("fair")


def test_jobconf_scheduler_conflicts_are_errors():
    sim = SimulatedCluster(2, seed=1, scheduler="fifo")
    with pytest.raises(ValueError, match="cluster runs"):
        sim.run_job(_pi_conf(scheduler="fair"))
    sim2 = SimulatedCluster(2, seed=1)
    with pytest.raises(ValueError, match="conflicting"):
        sim2.run_jobs([_pi_conf(scheduler="fair"), _pi_conf(scheduler="accel")])


def test_jobconf_unknown_scheduler_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        _pi_conf(scheduler="wat")


def test_jobconf_scheduler_adopted_by_unconfigured_cluster():
    sim = SimulatedCluster(2, seed=1)
    sim.run_job(_pi_conf(scheduler="fair"))
    assert sim.jobtracker.scheduler.name == "fair"


@register_scheduler
class _DoubleAssignScheduler(Scheduler):
    """Deliberately broken: hands the same task out twice."""

    name = "_test_double_assign"

    def assign(self, view, hb):
        for job in view.jobs():
            if job.pending_maps and hb.free_map_slots >= 2:
                t = job.pending_maps[0]
                return [TaskChoice(job.job_id, TaskKind.MAP, t),
                        TaskChoice(job.job_id, TaskKind.MAP, t)]
        return []


@register_scheduler
class _OverAssignScheduler(Scheduler):
    """Deliberately broken: ignores the tracker's free-slot budget."""

    name = "_test_over_assign"

    def assign(self, view, hb):
        return [
            TaskChoice(job.job_id, TaskKind.MAP, t)
            for job in view.jobs()
            for t in job.pending_maps
        ]


@pytest.mark.parametrize("name,match", [
    ("_test_double_assign", "not pending"),
    ("_test_over_assign", "exceed"),
])
def test_misbehaving_policies_surface_scheduler_errors(name, match):
    sim = SimulatedCluster(2, seed=1, scheduler=name)
    with pytest.raises(SchedulerError, match=match):
        sim.run_job(_pi_conf())


def test_run_jobs_staggered_arrivals_and_order():
    sim = SimulatedCluster(2, seed=5)
    confs = [_pi_conf(), _pi_conf()]
    results = sim.run_jobs(confs, arrivals=[0.0, 30.0])
    assert all(r.succeeded for r in results)
    assert results[0].submit_time == 0.0
    assert results[1].submit_time == 30.0
    # Results come back in conf order even with reversed arrival input.
    sim2 = SimulatedCluster(2, seed=5)
    r2 = sim2.run_jobs([_pi_conf(), _pi_conf()], arrivals=[30.0, 0.0])
    assert r2[0].submit_time == 30.0 and r2[1].submit_time == 0.0


def test_run_jobs_validates_arrivals():
    sim = SimulatedCluster(2, seed=5)
    with pytest.raises(ValueError, match="arrivals"):
        sim.run_jobs([_pi_conf()], arrivals=[0.0, 1.0])
    with pytest.raises(ValueError, match=">= 0"):
        sim.run_jobs([_pi_conf()], arrivals=[-1.0])
    assert sim.run_jobs([]) == []
