"""Property tests: preemption + churn preserve exactly-once accounting.

Random combinations of policy, cluster size, workload shape, and
membership churn (joins, revocations, spot storms) must never break the
runtime's core obligations: every job completes, every task ends done,
work is conserved, and every attempt ledger in the JobTracker drains to
zero — a kill that double-frees a slot or a requeue that loses a task
shows up here as a leaked or negative ledger entry.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simexec import run_workload_mix
from repro.hadoop import ChurnPlan
from repro.hadoop.job import JobState, TaskKind


def _plan(kind, nodes):
    if kind == "none":
        return None
    if kind == "join":
        return ChurnPlan.elastic(joins=[10.0])
    if kind == "leave":
        return ChurnPlan.elastic(leaves=[(12.0, None)])
    if kind == "storm":
        # Revoke the youngest blade, replace it shortly after.
        return ChurnPlan.spot_storm([nodes], at_time=10.0,
                                    replace_after_s=10.0)
    return ChurnPlan.elastic(joins=[8.0], leaves=[(20.0, None)])


@given(
    policy=st.sampled_from(["fair_preempt", "fair"]),
    nodes=st.integers(min_value=2, max_value=4),
    num_jobs=st.integers(min_value=2, max_value=3),
    churn_kind=st.sampled_from(["none", "join", "leave", "storm",
                                "join_leave"]),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_preemption_and_churn_keep_accounting_exactly_once(
    policy, nodes, num_jobs, churn_kind, seed
):
    mix, sim = run_workload_mix(
        nodes, num_jobs=num_jobs, scheduler=policy, stagger_s=6.0,
        data_gb=0.5, samples=8e9, seed=seed,
        churn=_plan(churn_kind, nodes), return_cluster=True,
    )
    assert mix.succeeded
    total_preempted = 0
    for result in mix.results:
        assert result.state is JobState.SUCCEEDED
        assert all(t.state == "done" for t in result.tasks)
        # Preemption and re-execution add attempts but never lose or
        # duplicate work: the per-task sample split is conserved.
        if result.workload == "pi":
            maps = [t for t in result.tasks if t.kind is TaskKind.MAP]
            total = sum(t.samples for t in maps)
            assert abs(total - 8e9) <= 1e-9 * 8e9
        total_preempted += result.counters.get("preempted_attempts", 0)
    # Plain fair never kills; fair_preempt may, and every kill it issues
    # is visible on exactly one victim job.
    jt = sim.jobtracker
    issued = jt.decision_counters().get("preemptions", 0)
    if policy == "fair":
        assert issued == 0
    assert total_preempted == issued
    # Exactly-once accounting: all three attempt ledgers drain to zero
    # no matter what was killed, revoked, or re-registered mid-run.
    assert all(v == 0 for v in jt._live_attempts.values())
    assert all(not v for v in jt._running_attempts.values())
    assert all(v == 0 for v in jt._tracker_attempts.values())
