"""Preemption: policy decisions (synthetic views) and JobTracker mechanism.

The fair_preempt policy's kill decisions are pure and unit-testable
against hand-built cluster states; the JobTracker side (kill delivery,
exactly-once requeue, validation of bogus choices) runs on the real
simulation stack.
"""

import pytest

from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf
from repro.hadoop.job import TaskKind
from repro.hadoop.messages import Heartbeat
from repro.perf.calibration import Backend
from repro.sched import (
    AttemptView,
    PreemptChoice,
    PreemptiveFairScheduler,
    Scheduler,
    SchedulerError,
    SyntheticJob,
    SyntheticView,
    TrackerView,
    resolve_scheduler,
)

GRACE = PreemptiveFairScheduler.preemption_grace_s


def hb(tracker_id=1, maps=0, reduces=0):
    return Heartbeat(tracker_id=tracker_id, free_map_slots=maps,
                     free_reduce_slots=reduces)


def contended_view(now=0.0):
    """Job 0 holds all four slots; job 1 is backlogged with nothing."""
    hog = SyntheticJob(
        0,
        num_maps=8,
        running_attempt_count=4,
        running_attempts={
            0: [AttemptView(1, 0, 2.0)],
            1: [AttemptView(1, 1, 10.0)],   # youngest attempt
            2: [AttemptView(2, 2, 8.0)],
            3: [AttemptView(2, 3, 5.0)],
        },
    )
    starved = SyntheticJob(1, pending_maps=(0, 1, 2, 3))
    return SyntheticView(
        [hog, starved], [TrackerView(1), TrackerView(2)], now=now
    )


def test_preemption_waits_out_the_grace_window():
    sched = resolve_scheduler("fair_preempt")
    # First sighting of starvation only starts the clock.
    assert sched.assign(contended_view(now=100.0), hb()) == []
    # Still inside the grace window: no kills.
    assert sched.assign(contended_view(now=100.0 + GRACE / 2), hb()) == []
    choices = sched.assign(contended_view(now=100.0 + GRACE), hb())
    assert len(choices) == 1


def test_preemption_kills_youngest_attempt_of_over_share_job():
    sched = resolve_scheduler("fair_preempt")
    sched.assign(contended_view(now=0.0), hb())
    (choice,) = sched.assign(contended_view(now=GRACE), hb())
    assert isinstance(choice, PreemptChoice)
    # Job 0 is the only over-floor job; its youngest attempt (start 10.0,
    # task 1 on tracker 1) is the least completed work to throw away.
    assert (choice.job_id, choice.kind, choice.task_id) == (0, TaskKind.MAP, 1)
    assert (choice.tracker_id, choice.attempt) == (1, 1)


def test_preemption_budget_bounds_kills_per_exchange():
    sched = PreemptiveFairScheduler(max_preempts_per_exchange=2)
    sched.assign(contended_view(now=0.0), hb())
    choices = sched.assign(contended_view(now=GRACE), hb())
    assert len(choices) == 2
    assert {c.task_id for c in choices} == {1, 2}  # two youngest


def test_kill_resets_the_grace_clock():
    """The slot a kill frees arrives via the victim's next heartbeat;
    until then the starved job still looks starved. Issuing another kill
    in that window would over-reclaim past the actual deficit."""
    sched = resolve_scheduler("fair_preempt")
    sched.assign(contended_view(now=0.0), hb())
    assert len(sched.assign(contended_view(now=GRACE), hb())) == 1
    # Same instant, next exchange: nothing (clock was just reset).
    assert sched.assign(contended_view(now=GRACE), hb()) == []
    # A full further grace window later it may reclaim again.
    assert len(sched.assign(contended_view(now=2 * GRACE), hb())) == 1


def test_no_preemption_at_or_above_floor_share():
    """Both jobs at their floor: quiescent even with pending backlog."""
    sched = resolve_scheduler("fair_preempt")
    a = SyntheticJob(
        0, num_maps=8, pending_maps=(4, 5), running_attempt_count=2,
        running_attempts={0: [AttemptView(1, 0, 1.0)],
                          1: [AttemptView(2, 1, 2.0)]},
    )
    b = SyntheticJob(
        1, num_maps=8, pending_maps=(4, 5), running_attempt_count=2,
        running_attempts={0: [AttemptView(1, 2, 1.5)],
                          2: [AttemptView(2, 3, 2.5)]},
    )
    for now in (0.0, GRACE, 3 * GRACE):
        assert sched.assign(
            SyntheticView([a, b], [TrackerView(1), TrackerView(2)], now=now),
            hb(),
        ) == []


def test_single_job_never_preempts_itself():
    sched = resolve_scheduler("fair_preempt")
    view = SyntheticView(
        [SyntheticJob(0, num_maps=8, pending_maps=(4, 5),
                      running_attempt_count=4,
                      running_attempts={0: [AttemptView(1, 0, 1.0)]})],
        [TrackerView(1), TrackerView(2)],
        now=10 * GRACE,
    )
    assert sched.assign(view, hb()) == []


# -- mechanism: the JobTracker side ------------------------------------------


class _BogusPreempt(Scheduler):
    """Delegates to fair, then claims a kill of an attempt that does
    not exist — the JobTracker must reject it loudly, not no-op."""

    name = "bogus_preempt"

    def __init__(self):
        self._inner = resolve_scheduler("fair")

    def assign(self, view, hb):
        choices = list(self._inner.assign(view, hb))
        if view.now > 2.0 and view.jobs():
            choices.append(PreemptChoice(
                view.jobs()[0].job_id, TaskKind.MAP, 0, hb.tracker_id, 999
            ))
        return choices


def test_jobtracker_rejects_bogus_preempt_choice():
    sim = SimulatedCluster(2, seed=7, scheduler=_BogusPreempt())
    conf = JobConf(name="bogus", workload="pi",
                   backend=Backend.CELL_SPE_DIRECT,
                   samples=4e9, num_map_tasks=8, num_reduce_tasks=1)
    with pytest.raises(SchedulerError, match="preempt"):
        sim.run_job(conf)


def test_fair_preempt_reclaims_and_requeues_exactly_once():
    """A heavy tenant arriving into a saturated cluster triggers real
    kills; the preempted tasks re-run and every ledger drains to zero."""
    sim = SimulatedCluster(2, seed=3, scheduler="fair_preempt")
    hog = JobConf(name="hog", workload="pi",
                  backend=Backend.CELL_SPE_DIRECT,
                  samples=8e10, num_map_tasks=16, num_reduce_tasks=0,
                  weight=1.0)
    vip = JobConf(name="vip", workload="pi",
                  backend=Backend.CELL_SPE_DIRECT,
                  samples=2e10, num_map_tasks=4, num_reduce_tasks=0,
                  weight=8.0)
    results = sim.run_jobs([hog, vip], arrivals=[0.0, 10.0])
    assert all(r.succeeded for r in results)
    jt = sim.jobtracker
    counters = jt.decision_counters()
    assert counters["preemptions"] >= 1
    assert counters["preemptions"] == counters.get("preempts_issued")
    # The victim job records its lost attempts and still finishes with
    # every task done; requeued tasks simply carry extra attempts.
    assert results[0].counters.get("preempted_attempts", 0) >= 1
    assert all(t.state == "done" for r in results for t in r.tasks)
    # Exactly-once accounting: every attempt ledger drains.
    assert all(v == 0 for v in jt._live_attempts.values())
    assert all(not v for v in jt._running_attempts.values())
    assert all(v == 0 for v in jt._tracker_attempts.values())
