"""Pure policy unit tests: decision functions against synthetic views.

No simulation engine anywhere — this is the payoff of the ClusterView
contract: every policy is exercised on hand-crafted cluster states.
"""

import pytest

from repro.hadoop.job import TaskKind
from repro.hadoop.messages import Heartbeat
from repro.perf.calibration import PAPER_CALIBRATION, Backend
from repro.sched import (
    AcceleratorAwareScheduler,
    AttemptView,
    FairScheduler,
    FifoScheduler,
    LocalityAwareScheduler,
    Scheduler,
    SyntheticJob,
    SyntheticView,
    TrackerView,
    resolve_scheduler,
    scheduler_names,
)
from repro.sched.accel import effective_backend, slot_rate


def hb(tracker_id=1, maps=2, reduces=1):
    return Heartbeat(tracker_id=tracker_id, free_map_slots=maps,
                     free_reduce_slots=reduces)


def view(jobs, trackers=None, now=0.0):
    if trackers is None:
        trackers = [TrackerView(1), TrackerView(2)]
    return SyntheticView(jobs, trackers, now=now)


# -- registry ----------------------------------------------------------------

def test_registry_names_and_resolution():
    assert scheduler_names() == [
        "accel", "fair", "fair_preempt", "fifo", "locality", "locality_reduce",
    ]
    assert isinstance(resolve_scheduler(None), FifoScheduler)
    assert isinstance(resolve_scheduler("fair"), FairScheduler)
    assert isinstance(resolve_scheduler(LocalityAwareScheduler), LocalityAwareScheduler)
    inst = AcceleratorAwareScheduler(patience=3)
    assert resolve_scheduler(inst) is inst
    with pytest.raises(KeyError, match="unknown scheduler"):
        resolve_scheduler("nope")
    with pytest.raises(TypeError):
        resolve_scheduler(42)


def test_every_builtin_has_a_description():
    for name in scheduler_names():
        policy = resolve_scheduler(name)
        assert isinstance(policy, Scheduler)
        assert policy.describe()


# -- FIFO --------------------------------------------------------------------

def test_fifo_serves_jobs_in_submission_order():
    jobs = [
        SyntheticJob(0, pending_maps=[0, 1, 2]),
        SyntheticJob(1, pending_maps=[0, 1]),
    ]
    choices = FifoScheduler().assign(view(jobs), hb(maps=4))
    assert [(c.job_id, c.task_id) for c in choices] == [
        (0, 0), (0, 1), (0, 2), (1, 0),
    ]
    assert all(c.kind is TaskKind.MAP and not c.speculative for c in choices)


def test_fifo_prefers_local_splits_then_queue_head():
    job = SyntheticJob(0, workload="aes", pending_maps=[0, 1, 2],
                       preferred={0: (9,), 1: (1,), 2: (1,)})
    choices = FifoScheduler().assign(view([job]), hb(tracker_id=1, maps=3))
    # Local tasks 1 then 2 first, remote head 0 last.
    assert [c.task_id for c in choices] == [1, 2, 0]


def test_fifo_never_picks_one_task_twice_in_a_batch():
    job = SyntheticJob(0, pending_maps=[0])
    choices = FifoScheduler().assign(view([job]), hb(maps=4))
    assert [c.task_id for c in choices] == [0]


def test_fifo_reduces_gated_on_map_phase():
    before = SyntheticJob(0, pending_reduces=[0], num_reduces=1)
    assert FifoScheduler().assign(view([before]), hb()) == []
    after = SyntheticJob(0, pending_reduces=[0], num_reduces=1,
                         maps_all_done=True)
    (choice,) = FifoScheduler().assign(view([after]), hb())
    assert choice.kind is TaskKind.REDUCE and choice.task_id == 0


def test_fifo_speculation_criteria():
    # Task 5 has run 3x the mean of finished maps on another tracker.
    job = SyntheticJob(
        0, speculative=True, num_maps=6,
        done_durations=[10.0, 10.0],
        map_states={5: "running"},
        running_attempts={5: [AttemptView(2, 1, 0.0)]},
    )
    (choice,) = FifoScheduler().assign(view([job], now=30.0), hb(tracker_id=1, maps=1))
    assert choice.speculative and choice.task_id == 5
    # ... but never onto the node already running it,
    assert FifoScheduler().assign(view([job], now=30.0), hb(tracker_id=2, maps=1)) == []
    # and never before the 1.5x-mean threshold.
    assert FifoScheduler().assign(view([job], now=12.0), hb(tracker_id=1, maps=1)) == []
    # A second free slot must not duplicate the same straggler twice.
    choices = FifoScheduler().assign(view([job], now=30.0), hb(tracker_id=1, maps=2))
    assert [c.task_id for c in choices] == [5]


# -- fair --------------------------------------------------------------------

def test_fair_interleaves_equal_weight_jobs():
    jobs = [
        SyntheticJob(0, pending_maps=[0, 1, 2, 3]),
        SyntheticJob(1, pending_maps=[0, 1, 2, 3]),
    ]
    choices = FairScheduler().assign(view(jobs), hb(maps=4))
    assert [(c.job_id, c.task_id) for c in choices] == [
        (0, 0), (1, 0), (0, 1), (1, 1),
    ]


def test_fair_respects_weights():
    jobs = [
        SyntheticJob(0, weight=3.0, pending_maps=list(range(8))),
        SyntheticJob(1, weight=1.0, pending_maps=list(range(8))),
    ]
    choices = FairScheduler().assign(view(jobs), hb(maps=4))
    by_job = [c.job_id for c in choices]
    # 3:1 weights over 4 slots → 3 for job 0, 1 for job 1.
    assert by_job.count(0) == 3 and by_job.count(1) == 1


def test_fair_counts_preexisting_load():
    jobs = [
        SyntheticJob(0, pending_maps=[10, 11], running_attempt_count=4),
        SyntheticJob(1, pending_maps=[20, 21], running_attempt_count=0),
    ]
    choices = FairScheduler().assign(view(jobs), hb(maps=2))
    # Job 1 is far below its share: both slots go to it.
    assert [c.job_id for c in choices] == [1, 1]


# -- locality ----------------------------------------------------------------

def test_locality_waits_for_local_slot_then_gives_up():
    policy = LocalityAwareScheduler(max_skips=2)
    job = SyntheticJob(0, workload="aes", pending_maps=[0],
                       preferred={0: (9,)})
    v = view([job])
    # Two declines within the delay bound...
    assert policy.assign(v, hb(tracker_id=1)) == []
    assert policy.assign(v, hb(tracker_id=1)) == []
    # ...then the stock remote pick.
    (choice,) = policy.assign(v, hb(tracker_id=1))
    assert choice.task_id == 0


def test_locality_assigns_local_and_unconstrained_immediately():
    policy = LocalityAwareScheduler(max_skips=5)
    local = SyntheticJob(0, workload="aes", pending_maps=[0], preferred={0: (1,)})
    (c,) = policy.assign(view([local]), hb(tracker_id=1, maps=1))
    assert c.task_id == 0
    # Compute-driven tasks (no splits) are local everywhere.
    pi = SyntheticJob(1, workload="pi", pending_maps=[0])
    (c,) = policy.assign(view([pi]), hb(tracker_id=2, maps=1))
    assert (c.job_id, c.task_id) == (1, 0)


def test_locality_exhausted_delay_stays_exhausted():
    """A forced remote launch must not re-arm the full delay: an
    all-remote job falls back to stock picking, not a one-task-per-delay
    trickle."""
    policy = LocalityAwareScheduler(max_skips=2)
    job = SyntheticJob(0, workload="aes", pending_maps=[0, 1, 2],
                       preferred={0: (9,), 1: (9,), 2: (9,)})
    v = view([job])
    assert policy.assign(v, hb(tracker_id=1, maps=1)) == []
    assert policy.assign(v, hb(tracker_id=1, maps=1)) == []
    # Delay burned: this and every following remote offer launches.
    for _ in range(3):
        assert len(policy.assign(v, hb(tracker_id=1, maps=1))) == 1
    # A local launch re-arms it.
    local_job = SyntheticJob(0, workload="aes", pending_maps=[0, 1],
                             preferred={0: (1,), 1: (9,)})
    (c,) = policy.assign(view([local_job]), hb(tracker_id=1, maps=1))
    assert c.task_id == 0
    remote_again = SyntheticJob(0, workload="aes", pending_maps=[1],
                                preferred={1: (9,)})
    assert policy.assign(view([remote_again]), hb(tracker_id=1, maps=1)) == []


def test_locality_skip_counts_per_heartbeat_not_per_slot():
    policy = LocalityAwareScheduler(max_skips=2)
    job = SyntheticJob(0, workload="aes", pending_maps=[0], preferred={0: (9,)})
    v = view([job])
    # One heartbeat with many free slots burns one skip, not four.
    assert policy.assign(v, hb(tracker_id=1, maps=4)) == []
    assert policy._skips[0] == 1


# -- accelerator affinity ----------------------------------------------------

CAL = PAPER_CALIBRATION


def cell_pi_job(job_id=0, **kw):
    return SyntheticJob(job_id, workload="pi", backend=Backend.CELL_SPE_DIRECT,
                        fallback_backend=Backend.JAVA_PPE, **kw)


def test_effective_backend_and_slot_rate():
    plain = TrackerView(1, has_cells=False)
    cell = TrackerView(2, has_cells=True)
    job = cell_pi_job(pending_maps=[0])
    assert effective_backend(job, cell) is Backend.CELL_SPE_DIRECT
    assert effective_backend(job, plain) is Backend.JAVA_PPE
    assert slot_rate(CAL, job, cell) == CAL.pi_cell_rate
    assert slot_rate(CAL, job, plain) == CAL.pi_ppe_rate
    # No fallback → cannot run at all.
    stuck = SyntheticJob(1, workload="pi", backend=Backend.CELL_SPE_DIRECT,
                         pending_maps=[0])
    assert slot_rate(CAL, stuck, plain) == 0.0
    # Data-driven workloads are delivery-clamped: every AES kernel beats
    # the 10 MB/s RecordReader path, so kernel choice washes out and the
    # policy sees identical rates on Cell and plain blades (the paper's
    # central finding, encoded as placement indifference).
    aes = SyntheticJob(2, workload="aes", backend=Backend.CELL_SPE_DIRECT,
                       fallback_backend=Backend.JAVA_PPE, pending_maps=[0])
    assert slot_rate(CAL, aes, cell) == CAL.recordreader_stream_bw
    assert slot_rate(CAL, aes, plain) == CAL.recordreader_stream_bw


def test_accel_prefers_matching_blades_and_waits_on_mismatch():
    policy = AcceleratorAwareScheduler(patience=2)
    trackers = [TrackerView(1, has_cells=False), TrackerView(2, has_cells=True)]
    job = cell_pi_job(pending_maps=[0, 1])
    v = SyntheticView([job], trackers)
    # The Cell blade gets tasks at once.
    assert [c.task_id for c in policy.assign(v, hb(tracker_id=2, maps=1))] == [0]
    # The plain blade is declined while patience lasts...
    assert policy.assign(v, hb(tracker_id=1, maps=1)) == []
    assert policy.assign(v, hb(tracker_id=1, maps=1)) == []
    # ...then accepted (progress guarantee).
    assert [c.task_id for c in policy.assign(v, hb(tracker_id=1, maps=1))] == [0]


def test_accel_patience_stays_exhausted_until_matched_slot():
    policy = AcceleratorAwareScheduler(patience=1)
    trackers = [TrackerView(1, has_cells=False), TrackerView(2, has_cells=True)]
    job = cell_pi_job(pending_maps=[0, 1, 2])
    v = SyntheticView([job], trackers)
    assert policy.assign(v, hb(tracker_id=1, maps=1)) == []          # burn patience
    assert len(policy.assign(v, hb(tracker_id=1, maps=1))) == 1     # forced
    # Still exhausted: the next mismatched heartbeat launches directly
    # instead of re-arming the full wait.
    assert len(policy.assign(v, hb(tracker_id=1, maps=1))) == 1


def test_accel_never_places_impossible_tasks_while_a_home_exists():
    policy = AcceleratorAwareScheduler(patience=0)
    trackers = [TrackerView(1, has_cells=False), TrackerView(2, has_cells=True)]
    job = SyntheticJob(0, workload="pi", backend=Backend.CELL_SPE_DIRECT,
                       pending_maps=[0])  # no fallback
    v = SyntheticView([job], trackers)
    assert policy.assign(v, hb(tracker_id=1, maps=2)) == []
    assert [c.task_id for c in policy.assign(v, hb(tracker_id=2, maps=1))] == [0]


def test_accel_degenerates_to_fifo_on_homogeneous_cluster():
    trackers = [TrackerView(1, has_cells=True), TrackerView(2, has_cells=True)]
    jobs = [cell_pi_job(0, pending_maps=[0, 1]), cell_pi_job(1, pending_maps=[0])]
    accel = AcceleratorAwareScheduler().assign(SyntheticView(jobs, trackers), hb(maps=3))
    fifo = FifoScheduler().assign(SyntheticView(jobs, trackers), hb(maps=3))
    assert accel == fifo
