"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import BACKENDS, build_parser, main


def run_cli(argv):
    buf = io.StringIO()
    code = main(argv, out=buf)
    return code, buf.getvalue()


def test_info_prints_calibration():
    code, out = run_cli(["info"])
    assert code == 0
    assert "700 MB/s" in out
    assert "RecordReader stream" in out
    assert "SPU chunk" in out


def test_fig2_prints_all_curves():
    code, out = run_cli(["fig2"])
    assert code == 0
    for label in ("Cell BE", "MapReduce Cell", "PPC", "Power 6"):
        assert label in out


def test_fig6_prints_rates():
    code, out = run_cli(["fig6"])
    assert code == 0
    assert "Samples/sec" in out


def test_fig5_reduced_sweep():
    code, out = run_cli(["fig5", "--nodes", "4", "8", "--data-gb", "8"])
    assert code == 0
    assert "Empty Mapper" in out and "Cell Mapper" in out


def test_fig7_reduced_sweep():
    code, out = run_cli(["fig7", "--nodes", "4", "--samples", "1e4", "1e9"])
    assert code == 0
    assert "Java Mapper" in out


def test_fig8_reduced_sweep():
    code, out = run_cli(["fig8", "--nodes", "2", "4", "--samples", "1e9"])
    assert code == 0
    assert "10x" in out


def test_fig4_reduced_sweep():
    code, out = run_cli(["fig4", "--nodes", "4"])
    assert code == 0
    assert "Cell BE Mapper" in out


def test_single_encrypt_job():
    code, out = run_cli(["encrypt", "--nodes", "2", "--data-gb", "2", "--backend", "cell"])
    assert code == 0
    assert "succeeded" in out
    assert "delivery_fraction" in out


def test_single_pi_job():
    code, out = run_cli(["pi", "--nodes", "2", "--samples", "1e8", "--backend", "java"])
    assert code == 0
    assert "succeeded" in out


def test_backend_aliases_cover_all():
    assert set(BACKENDS) >= {"java", "cell", "empty", "cell-mr", "java-power6", "gpu"}


def test_scenarios_command_lists_registry():
    code, out = run_cli(["scenarios"])
    assert code == 0
    for name in ("fig2", "fig8", "hetero", "faults", "gpu", "skew"):
        assert name in out
    assert "EXPERIMENTS.md" in out


def test_help_epilog_links_experiments_docs(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    assert "EXPERIMENTS.md" in capsys.readouterr().out


@pytest.mark.parametrize("argv", [
    ["fig2", "--seed", "77"],
    ["fig4", "--nodes", "4", "--seed", "77"],
    ["fig5", "--nodes", "2", "--data-gb", "2", "--seed", "77"],
    ["fig6", "--seed", "77"],
    ["fig7", "--nodes", "2", "--samples", "1e4", "--seed", "77"],
    ["fig8", "--nodes", "2", "--samples", "1e9", "--seed", "77"],
])
def test_every_fig_command_accepts_seed_and_is_deterministic(argv):
    """--seed threads into the simulation rng on every fig command; a
    repeated seeded run reproduces the output byte for byte."""
    first = run_cli(argv)
    second = run_cli(argv)
    assert first[0] == 0
    assert first == second


def test_fig_command_workers_do_not_change_output():
    serial = run_cli(["fig8", "--nodes", "2", "4", "--samples", "1e9"])
    parallel = run_cli(["fig8", "--nodes", "2", "4", "--samples", "1e9",
                        "--workers", "2"])
    assert serial[0] == 0
    assert serial == parallel


def test_sweep_command_runs_and_saves(tmp_path):
    code, out = run_cli([
        "sweep", "fig8", "--grid", "nodes=2,4", "--grid", "samples=1e9",
        "--out", str(tmp_path),
    ])
    assert code == 0
    assert "Fig. 8" in out and "sha256" in out
    assert (tmp_path / "fig8.json").exists()
    assert (tmp_path / "fig8.csv").exists()
    assert (tmp_path / "fig8.meta.json").exists()


def test_sweep_command_no_save(tmp_path):
    code, out = run_cli([
        "sweep", "fig8", "--grid", "nodes=2", "--grid", "samples=1e9",
        "--no-save", "--out", str(tmp_path),
    ])
    assert code == 0
    assert not list(tmp_path.iterdir())


def test_sweep_seeded_runs_are_identical():
    argv = ["sweep", "gpu", "--grid", "nodes=2", "--grid", "samples=1e9",
            "--seed", "55", "--no-save"]

    def run(a):
        code, out = run_cli(a)
        # The footer carries wall-clock time; everything else (tables,
        # chart, summary, sha256 prefix) must reproduce byte for byte.
        lines = [ln for ln in out.splitlines() if not ln.startswith("sweep gpu:")]
        sha = next(ln.split("sha256 ")[1] for ln in out.splitlines()
                   if "sha256" in ln)
        return code, lines, sha

    assert run(argv) == run(argv)


def test_sweep_rejects_unknown_scenario():
    code, out = run_cli(["sweep", "nope", "--no-save"])
    assert code == 2
    assert "unknown scenario" in out and "fig8" in out


def test_sweep_rejects_unknown_grid_key():
    code, out = run_cli(["sweep", "fig8", "--grid", "nodez=2", "--no-save"])
    assert code == 2
    assert "unknown parameter" in out


def test_sweep_rejects_malformed_grid():
    code, out = run_cli(["sweep", "fig8", "--grid", "nodes", "--no-save"])
    assert code == 2
    assert "malformed" in out


def test_sweep_rejects_uncastable_grid_value():
    code, out = run_cli(["sweep", "fig8", "--grid", "nodes=2.5", "--no-save"])
    assert code == 2
    assert "cannot parse" in out and "nodes" in out


def test_workers_must_be_positive():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--workers", "0"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "fig8", "--workers", "-1"])


def test_gpu_backend_alias_runs_gpu_cluster():
    """The gpu alias must provision GPU-equipped nodes, not fail every
    attempt on a Cell-only cluster."""
    code, out = run_cli(["pi", "--nodes", "2", "--samples", "1e8",
                         "--backend", "gpu"])
    assert code == 0
    assert "succeeded" in out
    code, out = run_cli(["encrypt", "--nodes", "2", "--data-gb", "1",
                         "--backend", "gpu"])
    assert code == 0
    assert "succeeded" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
