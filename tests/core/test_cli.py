"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import BACKENDS, build_parser, main


def run_cli(argv):
    buf = io.StringIO()
    code = main(argv, out=buf)
    return code, buf.getvalue()


def test_info_prints_calibration():
    code, out = run_cli(["info"])
    assert code == 0
    assert "700 MB/s" in out
    assert "RecordReader stream" in out
    assert "SPU chunk" in out


def test_fig2_prints_all_curves():
    code, out = run_cli(["fig2"])
    assert code == 0
    for label in ("Cell BE", "MapReduce Cell", "PPC", "Power 6"):
        assert label in out


def test_fig6_prints_rates():
    code, out = run_cli(["fig6"])
    assert code == 0
    assert "Samples/sec" in out


def test_fig5_reduced_sweep():
    code, out = run_cli(["fig5", "--nodes", "4", "8", "--data-gb", "8"])
    assert code == 0
    assert "Empty Mapper" in out and "Cell Mapper" in out


def test_fig7_reduced_sweep():
    code, out = run_cli(["fig7", "--nodes", "4", "--samples", "1e4", "1e9"])
    assert code == 0
    assert "Java Mapper" in out


def test_fig8_reduced_sweep():
    code, out = run_cli(["fig8", "--nodes", "2", "4", "--samples", "1e9"])
    assert code == 0
    assert "10x" in out


def test_fig4_reduced_sweep():
    code, out = run_cli(["fig4", "--nodes", "4"])
    assert code == 0
    assert "Cell BE Mapper" in out


def test_single_encrypt_job():
    code, out = run_cli(["encrypt", "--nodes", "2", "--data-gb", "2", "--backend", "cell"])
    assert code == 0
    assert "succeeded" in out
    assert "delivery_fraction" in out


def test_single_pi_job():
    code, out = run_cli(["pi", "--nodes", "2", "--samples", "1e8", "--backend", "java"])
    assert code == 0
    assert "succeeded" in out


def test_backend_aliases_cover_all():
    assert set(BACKENDS) >= {"java", "cell", "empty", "cell-mr", "java-power6"}


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
