"""Frame-size and malformed-frame guards on the shared wire format.

The framing itself (encode/decode round-trips, non-object rejection)
is pinned by the serve protocol tests; this file pins the *bounds*:
reads are capped at ``MAX_FRAME_BYTES``, and a frame that ends at EOF
instead of a newline is rejected as truncated rather than parsed —
a prefix of a JSON document can itself be valid JSON.
"""

import io

import pytest

from repro import wire


def test_recv_msg_roundtrip():
    buf = io.BytesIO()
    wire.send_msg(buf, {"verb": "hello", "x": 1.25})
    buf.seek(0)
    assert wire.recv_msg(buf) == {"verb": "hello", "x": 1.25}


def test_recv_msg_eof_is_peer_hangup():
    with pytest.raises(wire.ProtocolError, match="closed by peer"):
        wire.recv_msg(io.BytesIO(b""))


def test_recv_msg_rejects_truncated_frame():
    # b"123" is valid JSON, which is exactly why an unterminated line
    # must not be parsed: it could be the prefix of b"12345\n".
    with pytest.raises(wire.ProtocolError, match="truncated"):
        wire.recv_msg(io.BytesIO(b"123"))
    with pytest.raises(wire.ProtocolError, match="truncated"):
        wire.recv_msg(io.BytesIO(b'{"verb":"submit"}'))


def test_recv_msg_rejects_oversized_frame(monkeypatch):
    monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 64)
    flood = b"x" * 1000  # no newline anywhere: a peer streaming garbage
    with pytest.raises(wire.ProtocolError, match="oversized"):
        wire.recv_msg(io.BytesIO(flood))
    # The read stopped at the bound instead of buffering the flood.
    big = b'{"k":"' + b"v" * 200 + b'"}\n'
    with pytest.raises(wire.ProtocolError, match="oversized"):
        wire.recv_msg(io.BytesIO(big))


def test_recv_msg_accepts_frame_at_the_bound(monkeypatch):
    monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 64)
    msg = {"k": "v" * 55}
    line = wire.encode(msg)
    assert len(line) == 64  # newline included: exactly at the limit
    assert wire.recv_msg(io.BytesIO(line)) == msg


def test_read_events_tolerates_unterminated_final_line():
    stream = io.BytesIO(b'{"event":"a"}\n{"event":"b"}')
    assert [e["event"] for e in wire.read_events(stream)] == ["a", "b"]


def test_read_events_rejects_oversized_line(monkeypatch):
    monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 64)
    stream = io.BytesIO(b'{"event":"a"}\n' + b"y" * 1000 + b"\n")
    events = wire.read_events(stream)
    assert next(events)["event"] == "a"
    with pytest.raises(wire.ProtocolError, match="oversized"):
        next(events)


def test_read_events_handles_text_streams():
    stream = io.StringIO('{"event":"a"}\n\n{"event":"b"}\n')
    assert [e["event"] for e in wire.read_events(stream)] == ["a", "b"]
