"""Tests for the LocalExecutor and the functional two-level pipeline."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LocalExecutor, TwoLevelEncryptor
from repro.workloads import synthetic_text, tokenize, wordcount_map, wordcount_reduce
from repro.workloads.generators import random_bytes


# --------------------------------------------------------------------------- #
# LocalExecutor                                                                 #
# --------------------------------------------------------------------------- #
def test_wordcount_matches_counter():
    text = synthetic_text(500, seed=11)
    ex = LocalExecutor(num_reducers=4)
    out = ex.run(
        [(i, line) for i, line in enumerate(text.splitlines())],
        wordcount_map,
        wordcount_reduce,
    )
    expected = Counter(tokenize(text))
    assert dict(out) == dict(expected)


def test_combiner_reduces_intermediate_volume_same_answer():
    text = synthetic_text(400, seed=12)
    inputs = [(i, line) for i, line in enumerate(text.splitlines())]
    plain = LocalExecutor(num_reducers=2)
    out_plain = plain.run(inputs, wordcount_map, wordcount_reduce)
    combined = LocalExecutor(num_reducers=2)
    out_comb = combined.run(inputs, wordcount_map, wordcount_reduce, combiner=wordcount_reduce)
    assert dict(out_plain) == dict(out_comb)
    assert (
        combined.counters["combine_output_records"]
        < plain.counters["map_output_records"]
    )


def test_map_only_job_returns_sorted_pairs():
    ex = LocalExecutor()
    out = ex.run([(0, "b a c")], wordcount_map, reduce_fn=None)
    assert out == [("a", 1), ("b", 1), ("c", 1)]


def test_counters_track_phases():
    ex = LocalExecutor(num_reducers=2)
    ex.run([(0, "x y"), (1, "x")], wordcount_map, wordcount_reduce)
    assert ex.counters["map_input_records"] == 2
    assert ex.counters["map_output_records"] == 3
    assert ex.counters["reduce_input_groups"] == 2


def test_num_reducers_validated():
    with pytest.raises(ValueError):
        LocalExecutor(num_reducers=0)


def test_deterministic_output_order():
    inputs = [(i, "m n o m") for i in range(5)]
    a = LocalExecutor(num_reducers=3).run(inputs, wordcount_map, wordcount_reduce)
    b = LocalExecutor(num_reducers=3).run(inputs, wordcount_map, wordcount_reduce)
    assert a == b


@given(
    words=st.lists(st.sampled_from(["map", "reduce", "cell", "spu", "node"]), max_size=60),
    reducers=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_wordcount_property_any_partitioning(words, reducers):
    """Reducer count never changes the answer (partitioning soundness)."""
    text = " ".join(words)
    ex = LocalExecutor(num_reducers=reducers)
    out = ex.run([(0, text)], wordcount_map, wordcount_reduce)
    assert dict(out) == dict(Counter(words))


# --------------------------------------------------------------------------- #
# Two-level functional pipeline                                                 #
# --------------------------------------------------------------------------- #
def test_twolevel_matches_reference_encryption():
    data = random_bytes(256 * 1024, seed=21)
    enc = TwoLevelEncryptor(key=b"k" * 16, nonce=b"n" * 8, record_bytes=64 * 1024)
    assert enc.encrypt(data) == enc.reference_encrypt(data)


def test_twolevel_roundtrip():
    data = random_bytes(64 * 1024, seed=22)
    enc = TwoLevelEncryptor(key=b"q" * 16, record_bytes=16 * 1024)
    assert enc.decrypt(enc.encrypt(data)) == data


def test_twolevel_record_size_does_not_change_output():
    data = random_bytes(128 * 1024, seed=23)
    outs = {
        TwoLevelEncryptor(b"k" * 16, record_bytes=r).encrypt(data)
        for r in (16 * 1024, 32 * 1024, 128 * 1024)
    }
    assert len(outs) == 1


def test_twolevel_chunk_size_does_not_change_output():
    data = random_bytes(64 * 1024, seed=24)
    outs = {
        TwoLevelEncryptor(b"k" * 16, record_bytes=64 * 1024, chunk_bytes=c).encrypt(data)
        for c in (1024, 4096, 16 * 1024)
    }
    assert len(outs) == 1


def test_twolevel_uses_paper_chunk_default():
    enc = TwoLevelEncryptor(b"k" * 16)
    assert enc.chunk_bytes == 4096


def test_twolevel_rejects_unaligned_input():
    enc = TwoLevelEncryptor(b"k" * 16)
    with pytest.raises(ValueError):
        enc.encrypt(b"x" * 17)


def test_twolevel_rejects_bad_record_size():
    with pytest.raises(ValueError):
        TwoLevelEncryptor(b"k" * 16, record_bytes=100)


@given(size_blocks=st.integers(min_value=1, max_value=64))
@settings(max_examples=20, deadline=None)
def test_twolevel_equivalence_property(size_blocks):
    data = random_bytes(size_blocks * 16, seed=size_blocks)
    enc = TwoLevelEncryptor(b"p" * 16, record_bytes=256, chunk_bytes=64)
    assert enc.encrypt(data) == enc.reference_encrypt(data)
