"""Unit tests for SIMD rules and the PPE/SPE/CellProcessor models."""

import numpy as np
import pytest

from repro.perf import PAPER_CALIBRATION
from repro.cell import (
    CellProcessor,
    SIMDAlignmentError,
    check_alignment,
    pad_to_vector,
    vector_op_count,
)
from repro.sim import Environment


# --------------------------------------------------------------------------- #
# SIMD                                                                          #
# --------------------------------------------------------------------------- #
def test_check_alignment_accepts_vector_multiples():
    check_alignment(0)
    check_alignment(16)
    check_alignment(4096, offset=16)


def test_check_alignment_rejects_bad_length():
    with pytest.raises(SIMDAlignmentError):
        check_alignment(17)


def test_check_alignment_rejects_bad_offset():
    with pytest.raises(SIMDAlignmentError):
        check_alignment(16, offset=8)


def test_pad_to_vector_pads_up():
    out = pad_to_vector(b"\x01" * 17)
    assert out.size == 32
    assert out[:17].tolist() == [1] * 17
    assert out[17:].tolist() == [0] * 15


def test_pad_to_vector_noop_on_aligned():
    out = pad_to_vector(b"\x02" * 32)
    assert out.size == 32


def test_pad_returns_copy():
    src = np.zeros(16, dtype=np.uint8)
    out = pad_to_vector(src)
    out[0] = 9
    assert src[0] == 0


def test_vector_op_count():
    assert vector_op_count(0) == 0
    assert vector_op_count(1) == 1
    assert vector_op_count(16) == 1
    assert vector_op_count(17) == 2
    with pytest.raises(ValueError):
        vector_op_count(-1)


# --------------------------------------------------------------------------- #
# Processor                                                                     #
# --------------------------------------------------------------------------- #
def test_cell_has_eight_spes():
    env = Environment()
    cell = CellProcessor(env, 0, PAPER_CALIBRATION)
    assert cell.spe_count == 8
    for spe in cell.spes:
        assert spe.local_store.size_bytes == 256 * 1024


def test_spe_compute_serializes():
    env = Environment()
    cell = CellProcessor(env, 0, PAPER_CALIBRATION)
    spe = cell.spes[0]
    ends = []

    def work():
        yield from spe.compute(1.0)
        ends.append(env.now)

    env.process(work())
    env.process(work())
    env.run()
    assert ends == [1.0, 2.0]
    assert spe.busy_s == pytest.approx(2.0)


def test_spes_run_in_parallel():
    env = Environment()
    cell = CellProcessor(env, 0, PAPER_CALIBRATION)
    ends = []

    def work(spe):
        yield from spe.compute(1.0)
        ends.append(env.now)

    for spe in cell.spes:
        env.process(work(spe))
    env.run()
    assert ends == [1.0] * 8
    assert cell.total_spe_busy_s() == pytest.approx(8.0)


def test_spe_rejects_negative_compute():
    env = Environment()
    cell = CellProcessor(env, 0, PAPER_CALIBRATION)

    def bad():
        yield from cell.spes[0].compute(-1)

    env.process(bad())
    with pytest.raises(ValueError):
        env.run()


def test_ppe_copy_charges_memcpy_bandwidth():
    env = Environment()
    cell = CellProcessor(env, 0, PAPER_CALIBRATION)

    def copy():
        yield from cell.ppe.copy(PAPER_CALIBRATION.ppe_memcpy_bw)  # 1 second worth
        return env.now

    p = env.process(copy())
    assert env.run(p) == pytest.approx(1.0)
    assert cell.ppe.busy_s == pytest.approx(1.0)


def test_ppe_compute_serializes_with_copy():
    env = Environment()
    cell = CellProcessor(env, 0, PAPER_CALIBRATION)
    ends = []

    def compute():
        yield from cell.ppe.compute(1.0)
        ends.append(("compute", env.now))

    def copy():
        yield from cell.ppe.copy(PAPER_CALIBRATION.ppe_memcpy_bw / 2)
        ends.append(("copy", env.now))

    env.process(compute())
    env.process(copy())
    env.run()
    assert ends == [("compute", 1.0), ("copy", 1.5)]
