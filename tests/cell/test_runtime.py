"""Unit + property tests for the SPE offload runtimes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import Backend, PAPER_CALIBRATION
from repro.cell import (
    CellMapReduceRuntime,
    CellProcessor,
    DirectSPERuntime,
    LocalStoreOverflow,
    SIMDAlignmentError,
)
from repro.sim import Environment

CAL = PAPER_CALIBRATION
MB = 1024 * 1024


def make_runtime(cls=DirectSPERuntime, **kw):
    env = Environment()
    cell = CellProcessor(env, 0, CAL)
    return env, cell, cls(cell, CAL, **kw)


def offload(env, runtime, nbytes, spe_bw=None):
    spe_bw = spe_bw if spe_bw is not None else CAL.aes_spe_bw

    def run():
        result = yield from runtime.offload_bytes(nbytes, spe_bw)
        return result

    return env.run(env.process(run()))


# --------------------------------------------------------------------------- #
# Configuration validation                                                     #
# --------------------------------------------------------------------------- #
def test_paper_chunk_size_default():
    _env, _cell, rt = make_runtime()
    assert rt.chunk_bytes == 4 * 1024


def test_chunk_must_fit_double_buffers_in_local_store():
    # 4 buffers of chunk_bytes must fit in 256K - 48K reserve: 52K chunks fail.
    with pytest.raises(LocalStoreOverflow):
        make_runtime(chunk_bytes=64 * 1024)
    make_runtime(chunk_bytes=32 * 1024)  # 128K of buffers: fits


def test_chunk_must_be_vector_aligned():
    with pytest.raises(ValueError):
        make_runtime(chunk_bytes=1000)
    with pytest.raises(ValueError):
        make_runtime(chunk_bytes=0)


def test_probe_allocation_rolls_back():
    _env, cell, _rt = make_runtime()
    ls = cell.spes[0].local_store
    assert ls.used_bytes == pytest.approx(48 * 1024, abs=16)


# --------------------------------------------------------------------------- #
# Timing                                                                        #
# --------------------------------------------------------------------------- #
def test_startup_charged_once():
    env, _cell, rt = make_runtime(startup_s=0.5)
    r1 = offload(env, rt, 4096)
    r2 = offload(env, rt, 4096)
    assert r1.elapsed_s > 0.5
    assert r2.elapsed_s < 0.5


def test_plateau_reaches_700mbps():
    env, _cell, rt = make_runtime()
    result = offload(env, rt, 256 * MB)
    bw = 256 * MB / result.elapsed_s
    assert bw == pytest.approx(CAL.aes_cell_direct_bw, rel=0.01)


def test_analytic_and_event_paths_agree():
    # Same 2 MB offload, one forced through each path.
    env_e, _c1, rt_event = make_runtime(event_chunk_limit=10**9)
    env_a, _c2, rt_analytic = make_runtime(event_chunk_limit=0)
    r_event = offload(env_e, rt_event, 2 * MB)
    r_analytic = offload(env_a, rt_analytic, 2 * MB)
    assert r_event.path == "event"
    assert r_analytic.path == "analytic"
    assert r_event.elapsed_s == pytest.approx(r_analytic.elapsed_s, rel=0.05)


@given(nbytes=st.integers(min_value=16, max_value=4 * MB).map(lambda v: v - v % 16))
@settings(max_examples=20, deadline=None)
def test_event_analytic_consistency_property(nbytes):
    """For any aligned size, the two timing paths agree within 6%."""
    env_e, _c1, rt_event = make_runtime(event_chunk_limit=10**9)
    env_a, _c2, rt_analytic = make_runtime(event_chunk_limit=0)
    r_event = offload(env_e, rt_event, nbytes)
    r_analytic = offload(env_a, rt_analytic, nbytes)
    assert r_event.elapsed_s == pytest.approx(r_analytic.elapsed_s, rel=0.06)


def test_eight_spes_faster_than_one():
    """Halving the socket to 1 SPE must slow the offload ~8x."""
    env8, _c, rt8 = make_runtime(event_chunk_limit=0)
    r8 = offload(env8, rt8, 64 * MB)
    one_spe = CAL.evolve(spes_per_cell=1)
    env1 = Environment()
    cell1 = CellProcessor(env1, 0, one_spe)
    rt1 = DirectSPERuntime(cell1, one_spe, event_chunk_limit=0)

    def run():
        result = yield from rt1.offload_bytes(64 * MB, CAL.aes_spe_bw)
        return result

    r1 = env1.run(env1.process(run()))
    assert r1.elapsed_s / r8.elapsed_s == pytest.approx(8.0, rel=0.05)


def test_spe_busy_accounted():
    env, cell, rt = make_runtime()
    offload(env, rt, 8 * MB)
    chunks = 8 * MB // CAL.cell_chunk_bytes
    expected = 8 * MB / CAL.aes_spe_bw + chunks * CAL.spe_per_chunk_overhead_s
    assert cell.total_spe_busy_s() == pytest.approx(expected, rel=0.01)


def test_zero_bytes_is_instant():
    env, _cell, rt = make_runtime()
    result = offload(env, rt, 0)
    assert result.elapsed_s == 0
    assert result.chunks == 0


def test_negative_bytes_rejected():
    env, _cell, rt = make_runtime()
    with pytest.raises(ValueError):
        offload(env, rt, -1)


# --------------------------------------------------------------------------- #
# MapReduce-for-Cell overhead                                                   #
# --------------------------------------------------------------------------- #
def test_mapreduce_cell_slower_than_direct():
    env_d, _c1, direct = make_runtime()
    env_m, _c2, mr = make_runtime(cls=CellMapReduceRuntime)
    rd = offload(env_d, direct, 64 * MB)
    rm = offload(env_m, mr, 64 * MB)
    assert rm.elapsed_s > rd.elapsed_s * 1.3


def test_mapreduce_cell_event_path_uses_ppe_copy():
    env, cell, mr = make_runtime(cls=CellMapReduceRuntime, event_chunk_limit=10**9)
    offload(env, mr, 1 * MB)
    # The framework copied the full input through the PPE.
    assert cell.ppe.busy_s >= 1 * MB / CAL.ppe_memcpy_bw


def test_mapreduce_cell_between_direct_and_java():
    """Fig. 2 ordering: direct > framework > Power6 plateau rates."""
    assert CAL.aes_cell_direct_bw > CAL.aes_cell_mr_bw > CAL.aes_power6_bw


# --------------------------------------------------------------------------- #
# Pi offload                                                                    #
# --------------------------------------------------------------------------- #
def test_pi_offload_rate_and_init():
    env, _cell, rt = make_runtime(startup_s=CAL.pi_spu_init_s)

    def run(n):
        result = yield from rt.offload_samples(n, CAL.pi_cell_rate)
        return result

    r = env.run(env.process(run(1e9)))
    expected = CAL.pi_spu_init_s + 1e9 / CAL.pi_cell_rate
    assert r.elapsed_s == pytest.approx(expected, rel=0.01)


def test_pi_small_problem_dominated_by_init():
    env, _cell, rt = make_runtime(startup_s=CAL.pi_spu_init_s)

    def run(n):
        result = yield from rt.offload_samples(n, CAL.pi_cell_rate)
        return result

    r = env.run(env.process(run(1e4)))
    assert r.elapsed_s > CAL.pi_spu_init_s
    rate = 1e4 / r.elapsed_s
    assert rate < CAL.pi_power6_rate  # below Power6: the Fig. 6 left side


def test_pi_zero_samples():
    env, _cell, rt = make_runtime()

    def run():
        result = yield from rt.offload_samples(0, CAL.pi_cell_rate)
        return result

    r = env.run(env.process(run()))
    assert r.bytes_processed == 0


# --------------------------------------------------------------------------- #
# Functional path                                                               #
# --------------------------------------------------------------------------- #
def test_execute_bytes_applies_kernel_per_chunk():
    _env, _cell, rt = make_runtime()
    data = np.arange(16 * 1024, dtype=np.uint8)
    out = rt.execute_bytes(data, lambda chunk: chunk ^ 0xFF)
    assert np.array_equal(out, data ^ 0xFF)


def test_execute_bytes_chunk_boundaries_respected():
    _env, _cell, rt = make_runtime(chunk_bytes=64)
    seen_sizes = []

    def kernel(chunk):
        seen_sizes.append(chunk.size)
        return chunk

    rt.execute_bytes(np.zeros(160, dtype=np.uint8), kernel)
    assert seen_sizes == [64, 64, 32]


def test_execute_bytes_rejects_unaligned_input():
    _env, _cell, rt = make_runtime()
    with pytest.raises(SIMDAlignmentError):
        rt.execute_bytes(np.zeros(17, dtype=np.uint8), lambda c: c)


def test_execute_bytes_empty():
    _env, _cell, rt = make_runtime()
    out = rt.execute_bytes(b"", lambda c: c)
    assert out.size == 0
