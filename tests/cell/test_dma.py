"""Unit tests for the DMA engine's §II-B constraints and timing."""

import pytest

from repro.perf import PAPER_CALIBRATION
from repro.cell import DMAEngine, DMARequestError
from repro.sim import Environment


@pytest.fixture()
def engine():
    env = Environment()
    return env, DMAEngine(env, PAPER_CALIBRATION)


def test_request_size_cap_16k(engine):
    _env, dma = engine
    dma.validate(16 * 1024)
    with pytest.raises(DMARequestError):
        dma.validate(16 * 1024 + 16)


def test_vector_multiple_sizes(engine):
    _env, dma = engine
    dma.validate(16)
    dma.validate(4096)
    with pytest.raises(DMARequestError):
        dma.validate(100)  # >=16 but not multiple of 16


def test_small_request_sizes(engine):
    _env, dma = engine
    for ok in (1, 2, 4, 8):
        dma.validate(ok)
    for bad in (3, 5, 6, 7, 9, 15):
        with pytest.raises(DMARequestError):
            dma.validate(bad)


def test_zero_or_negative_rejected(engine):
    _env, dma = engine
    with pytest.raises(DMARequestError):
        dma.validate(0)
    with pytest.raises(DMARequestError):
        dma.validate(-16)


def test_unaligned_ls_offset_rejected(engine):
    _env, dma = engine
    with pytest.raises(DMARequestError):
        dma.validate(16, ls_offset=8)
    dma.validate(16, ls_offset=32)


def test_blocking_get_advances_time(engine):
    env, dma = engine

    def proc():
        yield from dma.get(16 * 1024)
        return env.now

    p = env.process(proc())
    elapsed = env.run(p)
    expected = PAPER_CALIBRATION.dma_request_latency_s + 16 * 1024 / PAPER_CALIBRATION.dma_bus_bw
    assert elapsed == pytest.approx(expected)


def test_inflight_cap_is_16():
    env = Environment()
    dma = DMAEngine(env, PAPER_CALIBRATION)
    max_seen = [0]

    def issue_many():
        procs = [dma.issue_get(16 * 1024) for _ in range(40)]
        yield env.timeout(0)
        max_seen[0] = max(max_seen[0], dma.inflight)
        yield env.all_of(procs)

    env.process(issue_many())
    env.run()
    assert max_seen[0] <= 16
    assert dma.stats.requests == 40


def test_directions_have_independent_channels():
    """A get and a put of equal size complete simultaneously (separate
    8 B/cycle channels per direction, §II-B)."""
    env = Environment()
    dma = DMAEngine(env, PAPER_CALIBRATION)
    done = {}

    def go(tag, inbound):
        if inbound:
            yield from dma.get(16 * 1024)
        else:
            yield from dma.put(16 * 1024)
        done[tag] = env.now

    env.process(go("in", True))
    env.process(go("out", False))
    env.run()
    assert done["in"] == pytest.approx(done["out"])


def test_same_direction_serializes():
    env = Environment()
    dma = DMAEngine(env, PAPER_CALIBRATION)
    done = []

    def go():
        yield from dma.get(16 * 1024)
        done.append(env.now)

    env.process(go())
    env.process(go())
    env.run()
    assert done[1] > done[0]


def test_transfer_chunk_splits_large_transfers():
    env = Environment()
    dma = DMAEngine(env, PAPER_CALIBRATION)

    def go():
        yield from dma.transfer_chunk(100 * 1024, inbound=True)

    env.process(go())
    env.run()
    # 100 KB / 16 KB = 6.25 → 7 requests.
    assert dma.stats.requests == 7
    assert dma.stats.bytes_in == pytest.approx(100 * 1024)


def test_stats_track_directions():
    env = Environment()
    dma = DMAEngine(env, PAPER_CALIBRATION)

    def go():
        yield from dma.get(1024)
        yield from dma.put(2048)

    env.process(go())
    env.run()
    assert dma.stats.bytes_in == 1024
    assert dma.stats.bytes_out == 2048
    assert dma.stats.total_bytes == 3072
    assert dma.stats.wait_time_s > 0


def test_chunk_time_estimate_matches_measured():
    env = Environment()
    dma = DMAEngine(env, PAPER_CALIBRATION)
    est = dma.chunk_time_estimate(64 * 1024)

    def go():
        yield from dma.transfer_chunk(64 * 1024, inbound=True)
        return env.now

    p = env.process(go())
    measured = env.run(p)
    assert measured == pytest.approx(est, rel=1e-9)


def test_bus_bandwidth_is_25_6_gbps():
    assert PAPER_CALIBRATION.dma_bus_bw == pytest.approx(25.6e9)
