"""Unit + property tests for the SPE local-store allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cell import LocalStore, LocalStoreOverflow


def test_capacity_matches_cell_spec():
    ls = LocalStore()
    assert ls.size_bytes == 256 * 1024


def test_alloc_returns_aligned_offsets():
    ls = LocalStore(reserved_bytes=0)
    for i in range(10):
        off = ls.alloc(f"buf{i}", 100)
        assert off % 16 == 0


def test_alloc_respects_custom_alignment():
    ls = LocalStore(reserved_bytes=0)
    ls.alloc("pad", 3)
    off = ls.alloc("big", 64, align=128)
    assert off % 128 == 0


def test_overflow_raises():
    ls = LocalStore(size_bytes=1024, reserved_bytes=0)
    ls.alloc("a", 1000)
    with pytest.raises(LocalStoreOverflow):
        ls.alloc("b", 100)


def test_reserve_reduces_free_space():
    ls = LocalStore(size_bytes=1024, reserved_bytes=512)
    with pytest.raises(LocalStoreOverflow):
        ls.alloc("a", 1000)
    ls.alloc("a", 500)


def test_duplicate_name_rejected():
    ls = LocalStore()
    ls.alloc("x", 16)
    with pytest.raises(ValueError):
        ls.alloc("x", 16)


def test_free_unknown_raises():
    with pytest.raises(KeyError):
        LocalStore().free("ghost")


def test_tail_free_returns_space():
    ls = LocalStore(size_bytes=1024, reserved_bytes=0)
    ls.alloc("a", 512)
    ls.alloc("b", 512)
    with pytest.raises(LocalStoreOverflow):
        ls.alloc("c", 256)
    ls.free("b")
    ls.alloc("c", 256)  # space reclaimed


def test_reset_clears_everything():
    ls = LocalStore()
    ls.alloc("a", 64)
    ls.reset()
    assert "a" not in ls
    assert ls.free_bytes == ls.size_bytes - ls.used_bytes + ls.free_bytes - ls.free_bytes  # sanity
    ls.alloc("a", 64)  # name reusable


def test_region_lookup():
    ls = LocalStore(reserved_bytes=0)
    off = ls.alloc("k", 32)
    assert ls.region("k") == (off, 32)
    assert ls.region("none") is None


def test_bad_params():
    with pytest.raises(ValueError):
        LocalStore(size_bytes=0)
    with pytest.raises(ValueError):
        LocalStore(size_bytes=100, reserved_bytes=100)
    ls = LocalStore()
    with pytest.raises(ValueError):
        ls.alloc("n", -1)
    with pytest.raises(ValueError):
        ls.alloc("n", 16, align=3)


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=8192), min_size=1, max_size=40)
)
@settings(max_examples=60, deadline=None)
def test_allocations_never_overlap_and_stay_in_bounds(sizes):
    """No two live regions overlap; every region is inside the store."""
    ls = LocalStore(reserved_bytes=4096)
    live = {}
    for i, size in enumerate(sizes):
        name = f"r{i}"
        try:
            off = ls.alloc(name, size)
        except LocalStoreOverflow:
            continue
        assert off >= 4096
        assert off + size <= ls.size_bytes
        for oname, (ooff, osize) in live.items():
            assert off + size <= ooff or ooff + osize <= off, (
                f"{name} overlaps {oname}"
            )
        live[name] = (off, size)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 2048)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_alloc_free_interleaving_keeps_accounting_sane(ops):
    """used_bytes never exceeds capacity; free after alloc always works."""
    ls = LocalStore(size_bytes=64 * 1024, reserved_bytes=0)
    live = []
    counter = 0
    for op, size in ops:
        if op == "alloc":
            name = f"n{counter}"
            counter += 1
            try:
                ls.alloc(name, size)
                live.append(name)
            except LocalStoreOverflow:
                pass
        elif live:
            ls.free(live.pop())
        assert 0 <= ls.used_bytes <= ls.size_bytes
