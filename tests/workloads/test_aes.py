"""AES-128 validation: FIPS-197/AESAVS vectors plus properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.aes import AES128, INV_SBOX, SBOX, aes_ctr_keystream


# --------------------------------------------------------------------------- #
# Known-answer tests                                                           #
# --------------------------------------------------------------------------- #
def test_sbox_known_entries():
    # FIPS-197 Figure 7 spot checks.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_inv_sbox_is_inverse():
    idx = np.arange(256, dtype=np.uint8)
    assert np.array_equal(INV_SBOX[SBOX[idx]], idx)
    assert np.array_equal(SBOX[INV_SBOX[idx]], idx)


def test_fips197_appendix_b():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    ct = AES128(key).encrypt_blocks(pt)
    assert bytes(ct).hex() == "3925841d02dc09fbdc118597196a0b32"


def test_fips197_appendix_c1():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    cipher = AES128(key)
    ct = cipher.encrypt_blocks(pt)
    assert bytes(ct).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"
    assert bytes(cipher.decrypt_blocks(ct)) == pt


def test_aesavs_gfsbox_vectors():
    # NIST AESAVS GFSbox: zero key, known plaintext/ciphertext pairs.
    cipher = AES128(bytes(16))
    vectors = [
        ("f34481ec3cc627bacd5dc3fb08f273e6", "0336763e966d92595a567cc9ce537f5e"),
        ("9798c4640bad75c7c3227db910174e72", "a9a1631bf4996954ebc093957b234589"),
        ("96ab5c2ff612d9dfaae8c31f30c42168", "ff4f8391a6a40ca5b25d23bedd44a597"),
    ]
    for pt_hex, ct_hex in vectors:
        ct = cipher.encrypt_blocks(bytes.fromhex(pt_hex))
        assert bytes(ct).hex() == ct_hex


def test_aesavs_varkey_vector():
    # Key 80000...0, zero plaintext.
    key = bytes.fromhex("80000000000000000000000000000000")
    ct = AES128(key).encrypt_blocks(bytes(16))
    assert bytes(ct).hex() == "0edd33d3c621e546455bd8ba1418bec8"


def test_key_schedule_first_last_round_keys():
    # FIPS-197 Appendix A.1 expansion of the Appendix B key.
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    rk = AES128(key).round_keys
    assert bytes(rk[0]).hex() == key.hex()
    assert bytes(rk[10]).hex() == "d014f9a8c9ee2589e13f0cc8b6630ca6"


# --------------------------------------------------------------------------- #
# Interface errors                                                             #
# --------------------------------------------------------------------------- #
def test_wrong_key_length_rejected():
    with pytest.raises(ValueError):
        AES128(b"short")


def test_non_multiple_of_16_rejected():
    c = AES128(bytes(16))
    with pytest.raises(ValueError):
        c.encrypt_blocks(b"x" * 17)
    with pytest.raises(ValueError):
        c.decrypt_blocks(b"x" * 15)


def test_empty_input():
    c = AES128(bytes(16))
    assert c.encrypt_blocks(b"").size == 0
    assert c.ctr_crypt(b"", b"12345678").size == 0


def test_ctr_nonce_length():
    c = AES128(bytes(16))
    with pytest.raises(ValueError):
        c.ctr_crypt(b"x" * 16, b"short")


# --------------------------------------------------------------------------- #
# Properties                                                                    #
# --------------------------------------------------------------------------- #
@given(data=st.binary(min_size=16, max_size=1024).map(lambda b: b[: len(b) - len(b) % 16]),
       key=st.binary(min_size=16, max_size=16))
@settings(max_examples=40, deadline=None)
def test_ecb_roundtrip_property(data, key):
    c = AES128(key)
    assert bytes(c.decrypt_blocks(c.encrypt_blocks(data))) == data


@given(data=st.binary(min_size=0, max_size=600),
       key=st.binary(min_size=16, max_size=16),
       nonce=st.binary(min_size=8, max_size=8))
@settings(max_examples=40, deadline=None)
def test_ctr_roundtrip_any_length(data, key, nonce):
    c = AES128(key)
    assert bytes(c.ctr_crypt(c.ctr_crypt(data, nonce), nonce)) == data


@given(nblocks=st.integers(min_value=1, max_value=32),
       split=st.integers(min_value=0, max_value=32))
@settings(max_examples=30, deadline=None)
def test_ctr_chunk_independence(nblocks, split):
    """Encrypting in two chunks at the right counter offsets equals one
    pass — the property the SPU chunking relies on."""
    split = min(split, nblocks)
    data = bytes(range(256)) * ((nblocks * 16) // 256 + 1)
    data = data[: nblocks * 16]
    c = AES128(b"k" * 16)
    whole = bytes(c.ctr_crypt(data, b"n" * 8))
    p1 = bytes(c.ctr_crypt(data[: split * 16], b"n" * 8, initial_counter=0))
    p2 = bytes(c.ctr_crypt(data[split * 16 :], b"n" * 8, initial_counter=split))
    assert p1 + p2 == whole


def test_ecb_distinct_blocks_encrypt_distinctly():
    c = AES128(bytes(16))
    data = bytes(16) + bytes([1] + [0] * 15)
    ct = bytes(c.encrypt_blocks(data))
    assert ct[:16] != ct[16:]


def test_ecb_equal_blocks_encrypt_equally():
    c = AES128(bytes(16))
    ct = bytes(c.encrypt_blocks(bytes(32)))
    assert ct[:16] == ct[16:]


def test_vectorized_matches_blockwise():
    """Encrypting N blocks at once equals encrypting them one at a time —
    the SIMD batch is semantically transparent."""
    c = AES128(b"0123456789abcdef")
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, 16 * 33, dtype=np.uint8).tobytes()
    batched = bytes(c.encrypt_blocks(data))
    single = b"".join(bytes(c.encrypt_blocks(data[i : i + 16])) for i in range(0, len(data), 16))
    assert batched == single


def test_keystream_counter_wraps_into_distinct_blocks():
    c = AES128(bytes(16))
    ks = aes_ctr_keystream(c, b"\x00" * 8, 0, 4).reshape(4, 16)
    assert len({bytes(b) for b in ks}) == 4
