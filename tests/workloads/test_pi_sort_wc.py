"""Tests for the Pi, sort, wordcount, and generator workloads."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    estimate_pi,
    make_sort_records,
    pi_error_bound,
    random_bytes,
    sample_batch,
    sort_records,
    synthetic_text,
    tokenize,
    wordcount_map,
    wordcount_reduce,
)
from repro.workloads.pi import PiEstimate
from repro.workloads.sort import (
    RECORD_BYTES,
    merge_sorted_runs,
    partition_records,
    records_are_sorted,
    sample_partitioner,
)


# --------------------------------------------------------------------------- #
# Pi                                                                            #
# --------------------------------------------------------------------------- #
def test_pi_converges_within_bound():
    est = estimate_pi(500_000, seed=123)
    assert est.error < pi_error_bound(500_000)


def test_pi_deterministic_per_seed():
    assert estimate_pi(10_000, seed=5).inside == estimate_pi(10_000, seed=5).inside
    assert estimate_pi(10_000, seed=5).inside != estimate_pi(10_000, seed=6).inside


def test_pi_merge_matches_monolithic_counting():
    """The distributed reduce (count merging) is exact: partial counts
    merged equal one big run with the same per-part seeds."""
    parts = [estimate_pi(50_000, seed=s) for s in range(4)]
    merged = parts[0]
    for p in parts[1:]:
        merged = merged.merge(p)
    assert merged.total == 200_000
    assert merged.inside == sum(p.inside for p in parts)
    assert merged.error < pi_error_bound(200_000, confidence_sigmas=4)


def test_pi_chunking_invariant():
    """Chunk size must not change the result for a fixed seed."""
    a = estimate_pi(100_000, seed=9, chunk=1 << 20)
    b = estimate_pi(100_000, seed=9, chunk=1_000)
    # Same generator consumed in different batch sizes still yields the
    # same total draw sequence? NumPy's Generator.random(n) consumes the
    # same stream regardless of batching only for matching n sums -- it
    # does, because random(n) draws n values sequentially.
    assert a.total == b.total
    # Counts may differ only if stream batching changes draw order; for
    # default_rng.random it does not when x and y are drawn per batch.
    # We assert statistical agreement instead of bit equality:
    assert abs(a.inside - b.inside) <= a.total  # sanity
    assert abs(a.value - b.value) < 0.05


def test_pi_error_bound_shrinks_as_sqrt():
    assert pi_error_bound(10_000) == pytest.approx(pi_error_bound(1_000_000) * 10, rel=1e-9)


def test_pi_validation():
    with pytest.raises(ValueError):
        estimate_pi(-1)
    with pytest.raises(ValueError):
        estimate_pi(10, chunk=0)
    with pytest.raises(ValueError):
        PiEstimate(0, 0).value
    with pytest.raises(ValueError):
        pi_error_bound(0)
    with pytest.raises(ValueError):
        sample_batch(-1, np.random.default_rng(0))


def test_sample_batch_bounds():
    rng = np.random.default_rng(0)
    n = 10_000
    inside = sample_batch(n, rng)
    assert 0 <= inside <= n
    assert sample_batch(0, rng) == 0


@given(seeds=st.lists(st.integers(0, 1000), min_size=2, max_size=6, unique=True))
@settings(max_examples=20, deadline=None)
def test_pi_merge_associative(seeds):
    parts = [estimate_pi(10_000, seed=s) for s in seeds]
    left = parts[0]
    for p in parts[1:]:
        left = left.merge(p)
    right = parts[-1]
    for p in reversed(parts[:-1]):
        right = right.merge(p)
    assert left.inside == right.inside and left.total == right.total


# --------------------------------------------------------------------------- #
# Sort                                                                          #
# --------------------------------------------------------------------------- #
def test_sort_records_sorted_and_permutation():
    recs = make_sort_records(2000, seed=3)
    out = sort_records(recs)
    assert records_are_sorted(out)
    # Same multiset of rows.
    assert sorted(map(bytes, recs)) == sorted(map(bytes, out))


def test_sort_is_stable_on_duplicate_keys():
    recs = make_sort_records(100, seed=1)
    recs[:, :10] = 0  # all keys equal
    out = sort_records(recs)
    assert np.array_equal(out, recs)  # stable: original order preserved


def test_partitioner_covers_all_records():
    recs = make_sort_records(5000, seed=4)
    bounds = sample_partitioner(recs, 8, seed=4)
    parts = partition_records(recs, bounds)
    assert len(parts) == 8
    assert sum(len(p) for p in parts) == 5000


def test_partitions_are_key_ordered():
    recs = make_sort_records(3000, seed=5)
    bounds = sample_partitioner(recs, 4, seed=5)
    parts = partition_records(recs, bounds)
    sorted_parts = [sort_records(p) for p in parts if len(p)]
    merged = np.vstack(sorted_parts)
    assert records_are_sorted(merged)  # partitions form disjoint key ranges


def test_merge_sorted_runs():
    recs = make_sort_records(1000, seed=6)
    runs = [sort_records(recs[i::3]) for i in range(3)]
    merged = merge_sorted_runs(runs)
    assert records_are_sorted(merged)
    assert len(merged) == 1000


def test_single_partition_shortcut():
    recs = make_sort_records(10, seed=0)
    assert sample_partitioner(recs, 1).shape == (0, 10)
    assert len(partition_records(recs, np.empty((0, 10), dtype=np.uint8))[0]) == 10


def test_record_layout():
    recs = make_sort_records(7)
    assert recs.shape == (7, RECORD_BYTES)
    with pytest.raises(ValueError):
        sort_records(np.zeros((3, 7), dtype=np.uint8))


@given(n=st.integers(0, 500), seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_sort_property(n, seed):
    recs = make_sort_records(n, seed=seed)
    out = sort_records(recs)
    assert records_are_sorted(out)
    assert len(out) == n


# --------------------------------------------------------------------------- #
# Wordcount + generators                                                        #
# --------------------------------------------------------------------------- #
def test_tokenize_lowercases_and_splits():
    assert tokenize("Map REDUCE, map!") == ["map", "reduce", "map"]


def test_wordcount_map_reduce():
    pairs = []
    wordcount_map(None, "a b a", lambda k, v: pairs.append((k, v)))
    assert sorted(pairs) == [("a", 1), ("a", 1), ("b", 1)]
    out = []
    wordcount_reduce("a", [1, 1, 1], lambda k, v: out.append((k, v)))
    assert out == [("a", 3)]


def test_random_bytes_deterministic():
    assert random_bytes(100, seed=1) == random_bytes(100, seed=1)
    assert random_bytes(100, seed=1) != random_bytes(100, seed=2)
    assert len(random_bytes(0)) == 0
    with pytest.raises(ValueError):
        random_bytes(-1)


def test_synthetic_text_shape():
    text = synthetic_text(120, seed=2, line_words=10)
    assert len(text.splitlines()) == 12
    assert len(tokenize(text)) == 120
    with pytest.raises(ValueError):
        synthetic_text(-1)
