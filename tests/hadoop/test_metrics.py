"""Tests for the job phase-breakdown analysis."""

import pytest

from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB
from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf
from repro.hadoop.metrics import analyze_job, slot_utilization

CAL = PAPER_CALIBRATION


def run_encrypt(nodes=2, data=4 * GB, backend=Backend.JAVA_PPE):
    sim = SimulatedCluster(nodes)
    sim.ingest("/in", int(data))
    conf = JobConf(name="m", workload="aes", backend=backend,
                   input_path="/in", num_map_tasks=nodes * 2)
    return sim, sim.run_job(conf)


def run_pi(nodes=2, samples=1e8):
    sim = SimulatedCluster(nodes)
    conf = JobConf(name="p", workload="pi", backend=Backend.JAVA_PPE,
                   samples=samples, num_map_tasks=nodes * 2)
    return sim, sim.run_job(conf)


def test_data_intensive_job_is_delivery_dominated():
    """The paper's central claim, as a metric: for the encryption job,
    the delivery share of task time is dominant and the kernel share is
    small (Cell) or overlapped (Java)."""
    _sim, result = run_encrypt(backend=Backend.CELL_SPE_DIRECT)
    b = analyze_job(result, CAL)
    assert b.delivery_fraction > 0.8
    assert b.kernel_fraction < 0.1


def test_java_kernel_fraction_larger_but_overlapped():
    _sim, result = run_encrypt(backend=Backend.JAVA_PPE)
    b = analyze_job(result, CAL)
    # The PPE kernel runs at ~16 MB/s vs 10 MB/s delivery: busy a large
    # share of the pipeline, but still delivery-bound overall.
    assert 0.3 < b.kernel_fraction < 1.0
    assert b.delivery_fraction > 0.7


def test_cpu_intensive_job_is_kernel_dominated():
    _sim, result = run_pi(samples=2e9)
    b = analyze_job(result, CAL)
    assert b.kernel_fraction > 0.6
    assert b.delivery_s == 0.0


def test_breakdown_accounting_consistency():
    _sim, result = run_encrypt()
    b = analyze_job(result, CAL)
    assert b.records == result.total_records
    assert b.input_bytes == result.counters["map_input_bytes"]
    assert b.setup_wall_s > 0
    assert b.tail_wall_s > 0
    assert b.makespan_wall_s > b.setup_wall_s + b.tail_wall_s
    summary = b.summary()
    assert set(summary) >= {"makespan_s", "delivery_fraction", "kernel_fraction"}


def test_slot_utilization_high_for_work_bound_job():
    sim, result = run_encrypt(nodes=2, data=8 * GB)
    util = slot_utilization(result, total_slots=4)
    assert util > 0.7


def test_slot_utilization_low_on_runtime_floor():
    _sim, result = run_pi(nodes=2, samples=1e6)  # trivial work
    util = slot_utilization(result, total_slots=4)
    assert util < 0.4


def test_slot_utilization_validation():
    _sim, result = run_pi()
    with pytest.raises(ValueError):
        slot_utilization(result, total_slots=0)
