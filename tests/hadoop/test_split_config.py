"""Unit tests for JobConf validation and split computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import Backend
from repro.perf.calibration import MB
from repro.hadoop import InputFormat, JobConf
from repro.hdfs.blocks import Block, FileMeta


def make_meta(size, block_size=64 * MB, nodes=4):
    meta = FileMeta(path="/f", size=size, block_size=block_size)
    nblocks = -(-size // block_size)
    for i in range(nblocks):
        bsize = min(block_size, size - i * block_size)
        b = Block(i, "/f", i, bsize)
        b.locations = [i % nodes + 1]
        meta.blocks.append(b)
    return meta


# --------------------------------------------------------------------------- #
# JobConf                                                                       #
# --------------------------------------------------------------------------- #
def test_jobconf_aes_requires_input():
    with pytest.raises(ValueError):
        JobConf(workload="aes", input_path=None)


def test_jobconf_pi_requires_samples_and_maps():
    with pytest.raises(ValueError):
        JobConf(workload="pi", samples=0, num_map_tasks=4)
    with pytest.raises(ValueError):
        JobConf(workload="pi", samples=100, num_map_tasks=None)
    conf = JobConf(workload="pi", samples=100, num_map_tasks=4)
    assert not conf.is_data_driven


def test_jobconf_unknown_workload():
    with pytest.raises(ValueError):
        JobConf(workload="mystery", input_path="/x")


def test_jobconf_defaults_match_paper():
    conf = JobConf(workload="aes", input_path="/x")
    assert conf.record_bytes == 64 * MB
    assert conf.num_reduce_tasks == 0
    assert conf.backend is Backend.JAVA_PPE


# --------------------------------------------------------------------------- #
# InputFormat                                                                   #
# --------------------------------------------------------------------------- #
def test_split_size_is_filesize_over_nummappers():
    meta = make_meta(1000 * MB)
    splits = InputFormat.compute_splits(meta, num_splits=8)
    assert len(splits) == 8
    assert splits[0].length == 125 * MB
    assert sum(s.length for s in splits) == 1000 * MB


def test_default_one_split_per_block():
    meta = make_meta(200 * MB)
    splits = InputFormat.compute_splits(meta)
    assert [s.length for s in splits] == [64 * MB, 64 * MB, 64 * MB, 8 * MB]


def test_explicit_split_bytes():
    meta = make_meta(100 * MB)
    splits = InputFormat.compute_splits(meta, split_bytes=30 * MB)
    assert [s.length for s in splits] == [30 * MB, 30 * MB, 30 * MB, 10 * MB]


def test_splits_are_contiguous_and_disjoint():
    meta = make_meta(999 * MB)
    splits = InputFormat.compute_splits(meta, num_splits=7)
    pos = 0
    for s in splits:
        assert s.offset == pos
        pos = s.end
    assert pos == meta.size


def test_both_num_and_size_rejected():
    meta = make_meta(64 * MB)
    with pytest.raises(ValueError):
        InputFormat.compute_splits(meta, num_splits=2, split_bytes=MB)


def test_empty_file_no_splits():
    meta = make_meta(0)
    assert InputFormat.compute_splits(meta) == []


def test_preferred_nodes_ranked_by_coverage():
    meta = make_meta(128 * MB, nodes=2)  # blocks alternate between nodes 1, 2
    # A split covering 1.5 blocks: the first block's node holds more bytes.
    pref = InputFormat.preferred_nodes(meta, 0, 96 * MB)
    assert pref[0] == meta.blocks[0].locations[0]
    assert set(pref) == {1, 2}


def test_preferred_nodes_top_limit():
    meta = make_meta(64 * MB * 6, nodes=6)
    pref = InputFormat.preferred_nodes(meta, 0, meta.size, top=3)
    assert len(pref) == 3


@given(
    size=st.integers(min_value=1, max_value=10_000),
    num=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=80, deadline=None)
def test_split_partition_property(size, num):
    """Splits always tile the file exactly, regardless of size/num."""
    meta = make_meta(size, block_size=128)
    splits = InputFormat.compute_splits(meta, num_splits=num)
    assert sum(s.length for s in splits) == size
    pos = 0
    for s in splits:
        assert s.offset == pos
        assert s.length > 0
        pos = s.end
