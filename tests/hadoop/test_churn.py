"""Elastic membership: churn plans, runtime joins, revocation recovery.

The ChurnPlan surface is pure and pinned directly; the integration
tests drive joins/leaves against a running cluster and assert the
JobTracker's membership machinery — runtime registration, loss
detection, the scheduler hook — from the outside.
"""

import pytest

from repro.core.simexec import SimulatedCluster, run_workload_mix
from repro.hadoop import ChurnEvent, ChurnPlan, JobConf, apply_churn
from repro.perf.calibration import Backend
from repro.sched.fair import FairScheduler


def long_pi(samples=1e11, maps=16, name="churny"):
    return JobConf(name=name, workload="pi",
                   backend=Backend.CELL_SPE_DIRECT,
                   samples=samples, num_map_tasks=maps, num_reduce_tasks=1)


# -- plan construction -------------------------------------------------------

def test_churn_event_validation():
    with pytest.raises(ValueError, match="unknown churn action"):
        ChurnEvent(1.0, "explode")
    with pytest.raises(ValueError, match="past"):
        ChurnEvent(-1.0, "join")


def test_parse_specs():
    plan = ChurnPlan.parse(["join@20", "leave@60:3", "storm@30:2/10"])
    actions = [(e.action, e.at_time, e.node_id) for e in plan.events]
    assert actions == [
        ("join", 20.0, None),
        ("leave", 60.0, 3),
        ("leave", 30.0, None),
        ("leave", 40.0, None),
    ]
    for bad in ("leave@", "join@x", "storm@5:0", "storm@5:-2", "reboot@1"):
        with pytest.raises(ValueError, match="bad churn spec"):
            ChurnPlan.parse([bad])


def test_spot_storm_spreads_and_replaces():
    plan = ChurnPlan.spot_storm([4, 3], at_time=30.0, window_s=10.0,
                                replace_after_s=15.0)
    events = [(e.action, e.at_time) for e in plan.events]
    assert events == [
        ("leave", 30.0), ("join", 45.0),
        ("leave", 40.0), ("join", 55.0),
    ]
    assert all(not e.kill_datanode for e in plan.events)
    assert not ChurnPlan.spot_storm([], at_time=1.0)  # empty storm is empty


def test_elastic_plan_shapes():
    plan = ChurnPlan.elastic(joins=[5.0], leaves=[(9.0, None), (12.0, 2)])
    assert [(e.action, e.node_id) for e in plan.events] == [
        ("join", None), ("leave", None), ("leave", 2),
    ]
    assert bool(ChurnPlan()) is False


# -- integration -------------------------------------------------------------

def test_runtime_joiner_receives_work_and_job_completes():
    sim = SimulatedCluster(2, seed=5)
    sim.start()
    apply_churn(sim.env, sim, ChurnPlan.elastic(joins=[5.0]))
    result = sim.run_job(long_pi())
    assert result.succeeded
    # The blade that joined at t=5 (node id 3: ids are join-ordered and
    # never reused) was fed real work by the JobTracker.
    joiner = sim.cluster.workers[-1]
    assert joiner.node_id == 3
    assert joiner.kernel_busy_s > 0
    assert all(v == 0 for v in sim.jobtracker._live_attempts.values())


def test_storm_recovery_completes_with_degradation():
    base = run_workload_mix(4, num_jobs=3, scheduler="fair",
                            data_gb=1.0, samples=8e9, seed=9)
    storm = run_workload_mix(
        4, num_jobs=3, scheduler="fair", data_gb=1.0, samples=8e9, seed=9,
        churn=ChurnPlan.spot_storm([4, 3], at_time=8.0, window_s=4.0),
    )
    assert base.succeeded and storm.succeeded
    # Losing half the blades mid-run costs time (detection + re-execution)
    # but never correctness.
    assert storm.makespan_s > base.makespan_s


def test_leave_of_already_dead_node_is_a_noop():
    plan = ChurnPlan.elastic(leaves=[(5.0, 2), (6.0, 2), (7.0, None)])
    mix = run_workload_mix(3, num_jobs=2, scheduler="fair",
                           data_gb=0.5, samples=8e9, seed=2, churn=plan)
    assert mix.succeeded


class _RecordingFair(FairScheduler):
    name = "recording_fair"

    def __init__(self):
        self.joined: list[tuple[int, ...]] = []
        self.lost: list[tuple[int, ...]] = []
        self.epochs: list[int] = []

    def on_membership_change(self, view, joined=(), lost=()):
        self.joined.append(tuple(joined))
        self.lost.append(tuple(lost))
        self.epochs.append(view.membership_epoch)


def test_membership_hook_fires_for_joins_and_losses():
    sched = _RecordingFair()
    sim = SimulatedCluster(2, seed=5, scheduler=sched)
    # Construction-time registration already notified the policy once
    # per initial blade.
    assert sched.joined == [(1,), (2,)]
    sim.start()
    apply_churn(sim.env, sim,
                ChurnPlan.elastic(joins=[5.0], leaves=[(8.0, 1)]))
    result = sim.run_job(long_pi())
    assert result.succeeded
    # The runtime joiner (id 3) was announced, and the revoked blade
    # (id 1) was reported lost once the heartbeat timeout declared it.
    assert (3,) in sched.joined
    assert (1,) in sched.lost
    # Epochs are strictly increasing: the view always reflects the new
    # membership by the time the hook runs.
    assert sched.epochs == sorted(sched.epochs)
    assert sim.jobtracker._membership_epoch == 4  # 2 initial + join + loss
