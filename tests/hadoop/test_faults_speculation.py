"""Fault-tolerance and speculative-execution tests.

"In order to provide the environment with fault tolerance capability,
during the process of a split the TaskTracker sends periodic heartbeats
to the JobTracker. This way, the JobTracker can detect a node failure
and reschedule the task to another TaskTracker" (§III-A).
"""

import pytest

from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.core.simexec import SimulatedCluster
from repro.hadoop import FaultPlan, JobConf, kill_node_at
from repro.hadoop.job import JobState

CAL = PAPER_CALIBRATION


def test_node_crash_with_replication_recovers():
    """Replication 2: a mid-job crash loses a tracker but not the data;
    the job finishes on the survivors."""
    sim = SimulatedCluster(3, trace=True)
    sim.client.ingest_file("/in", 2 * GB, replication=2)
    conf = JobConf(name="ft", workload="aes", backend=Backend.JAVA_PPE,
                   input_path="/in", num_map_tasks=6)
    sim.start()
    job = sim.jobtracker.submit_job(conf)
    victim = sim.trackers[0]
    kill_node_at(sim.env, victim, FaultPlan(node_id=victim.tracker_id, at_time=30.0),
                 namenode=sim.namenode)
    result = sim.env.run(job.completion)
    assert result.state is JobState.SUCCEEDED
    assert result.counters.get("rescheduled_tasks", 0) >= 1
    # No surviving task ran on the dead node.
    for t in result.tasks:
        assert t.tracker != victim.tracker_id


def test_node_crash_replication_1_fails_job():
    """The paper's replication=1 setting cannot survive DataNode loss:
    tasks needing the lost blocks exhaust their attempts and the job
    fails — the trade-off the paper accepted for the experiments."""
    sim = SimulatedCluster(2)
    sim.ingest("/in", 2 * GB)  # replication 1
    conf = JobConf(name="ft1", workload="aes", backend=Backend.JAVA_PPE,
                   input_path="/in", num_map_tasks=4, max_attempts=2)
    sim.start()
    job = sim.jobtracker.submit_job(conf)
    victim = sim.trackers[0]
    kill_node_at(sim.env, victim, FaultPlan(node_id=victim.tracker_id, at_time=20.0),
                 namenode=sim.namenode)
    result = sim.env.run(job.completion)
    assert result.state is JobState.FAILED


def test_crash_before_start_is_tolerated_with_surviving_data():
    """Pi has no input data: losing a node only costs its slots."""
    sim = SimulatedCluster(3)
    conf = JobConf(name="pi-ft", workload="pi", backend=Backend.JAVA_PPE,
                   samples=2e9, num_map_tasks=6)
    sim.start()
    job = sim.jobtracker.submit_job(conf)
    victim = sim.trackers[2]
    kill_node_at(sim.env, victim, FaultPlan(node_id=victim.tracker_id, at_time=1.0,
                                            kill_datanode=False))
    result = sim.env.run(job.completion)
    assert result.state is JobState.SUCCEEDED


def test_tracker_loss_detected_within_timeout():
    sim = SimulatedCluster(2, trace=True)
    conf = JobConf(name="pi", workload="pi", backend=Backend.JAVA_PPE,
                   samples=5e9, num_map_tasks=4)
    sim.start()
    job = sim.jobtracker.submit_job(conf)
    victim = sim.trackers[1]
    kill_node_at(sim.env, victim, FaultPlan(node_id=victim.tracker_id, at_time=10.0,
                                            kill_datanode=False))
    result = sim.env.run(job.completion)
    assert result.state is JobState.SUCCEEDED
    lost = [r for r in sim.cluster.tracer.select("jobtracker", "tracker_lost")]
    assert len(lost) == 1
    # Detection happened after the crash but within ~timeout + interval.
    assert 10.0 < lost[0].time <= 10.0 + CAL.heartbeat_timeout_s + 2 * CAL.heartbeat_interval_s


def test_completed_maps_rerun_when_reducer_needs_them():
    """Map outputs live on the mapper's local disk; losing that node
    after the map finished but before the shuffle forces a re-run."""
    sim = SimulatedCluster(3, trace=True)
    sim.client.ingest_file("/in", 1536 * MB, replication=2)
    conf = JobConf(name="sort", workload="sort", backend=Backend.JAVA_PPE,
                   input_path="/in", num_map_tasks=6, num_reduce_tasks=2)
    sim.start()
    job = sim.jobtracker.submit_job(conf)

    def kill_after_maps():
        # Wait until all maps are done, then kill a node holding outputs.
        while job.maps_done_time < 0:
            yield sim.env.timeout(1.0)
        victim = sim.trackers[0]
        victim.kill()
        sim.namenode.handle_datanode_failure(victim.tracker_id)

    sim.env.process(kill_after_maps())
    result = sim.env.run(job.completion)
    assert result.state is JobState.SUCCEEDED
    assert result.counters.get("rerun_completed_maps", 0) >= 1


def test_speculative_execution_duplicates_straggler():
    """With speculation on, a job over heterogeneous mappers spawns at
    least one duplicate attempt and still completes correctly."""
    # Heterogeneous cluster: half the nodes lack accelerators, so a
    # Cell-backed job's pending queue drains while PPE... instead, use
    # pi with many tasks and one slow tracker via fault-free approach:
    # speculation triggers when free slots exist and a straggler runs.
    sim = SimulatedCluster(3, trace=True)
    conf = JobConf(name="spec", workload="pi", backend=Backend.JAVA_PPE,
                   samples=6e9, num_map_tasks=5,  # odd count leaves a free slot
                   speculative=True)
    sim.start()
    job = sim.jobtracker.submit_job(conf)
    result = sim.env.run(job.completion)
    assert result.state is JobState.SUCCEEDED
    # All logical tasks completed exactly once in the bookkeeping.
    assert all(t.state == "done" for t in result.tasks)


def test_speculation_off_no_duplicates():
    sim = SimulatedCluster(3, trace=True)
    conf = JobConf(name="nospec", workload="pi", backend=Backend.JAVA_PPE,
                   samples=6e9, num_map_tasks=5, speculative=False)
    sim.start()
    job = sim.jobtracker.submit_job(conf)
    result = sim.env.run(job.completion)
    assert result.counters.get("speculative_attempts", 0) == 0
    assert result.state is JobState.SUCCEEDED
