"""Tests for the Terasort-style distributed job (map + shuffle + reduce)."""

import pytest

from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.core import run_sort_job
from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf
from repro.hadoop.job import JobState, TaskKind

CAL = PAPER_CALIBRATION


def test_sort_job_succeeds_with_full_shuffle():
    result, sim = run_sort_job(2, 4 * GB, return_cluster=True)
    assert result.state is JobState.SUCCEEDED
    assert result.num_reduces == 2
    # Sort is size-preserving: all map output shuffles to reducers.
    assert result.counters["map_output_bytes"] == pytest.approx(4 * GB)
    assert result.counters["reduce_shuffle_bytes"] == pytest.approx(4 * GB, rel=0.01)


def test_sort_reducers_start_after_all_maps():
    result = run_sort_job(2, 2 * GB)
    maps_end = max(t.end_time for t in result.tasks if t.kind is TaskKind.MAP)
    for t in result.tasks:
        if t.kind is TaskKind.REDUCE:
            assert t.start_time >= maps_end


def test_sort_output_written_to_hdfs():
    result, sim = run_sort_job(2, 2 * GB, return_cluster=True)
    out_files = [p for p in sim.namenode.list_files() if p.startswith("/out/")]
    assert len(out_files) == result.num_reduces
    total_out = sum(sim.namenode.file_meta(p).size for p in out_files)
    assert total_out == pytest.approx(2 * GB, rel=0.01)


def test_sort_slower_than_map_only_encryption():
    """The extra shuffle + merge + HDFS write phases cost real time."""
    from repro.core import run_encryption_job

    sort = run_sort_job(2, 2 * GB)
    enc = run_encryption_job(2, 2 * GB, Backend.JAVA_PPE)
    assert sort.makespan_s > enc.makespan_s * 1.1


def test_sort_reduce_count_configurable():
    result = run_sort_job(2, 2 * GB, num_reduce_tasks=4)
    assert result.num_reduces == 4


def test_concurrent_jobs_share_the_cluster():
    """Two jobs submitted together both finish; the cluster interleaves
    them (FIFO task feeding across jobs on each heartbeat)."""
    sim = SimulatedCluster(3)
    sim.ingest("/a", 2 * GB)
    sim.start()
    j1 = sim.jobtracker.submit_job(JobConf(
        name="j1", workload="aes", backend=Backend.JAVA_PPE,
        input_path="/a", num_map_tasks=6))
    j2 = sim.jobtracker.submit_job(JobConf(
        name="j2", workload="pi", backend=Backend.JAVA_PPE,
        samples=2e9, num_map_tasks=6))
    r1 = sim.env.run(j1.completion)
    r2 = sim.env.run(j2.completion) if not j2.completion.triggered else j2.result()
    assert r1.state is JobState.SUCCEEDED
    assert r2.state is JobState.SUCCEEDED
    # Overlap: the second job started before the first finished.
    assert r2.launch_time < r1.finish_time
