"""Edge-case tests across the Hadoop layer and bridges."""

import pytest

from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.cluster import Network, Node, QS22_SPEC
from repro.core.simexec import SimulatedCluster
from repro.gpu import GPUDevice, GPUOffloadRuntime, GPUSpec
from repro.hadoop import JobConf, MapKernel
from repro.hadoop.job import JobState
from repro.hadoop.tasks import _map_output_bytes
from repro.sim import Environment

CAL = PAPER_CALIBRATION


# --------------------------------------------------------------------------- #
# Empty / trivial jobs                                                          #
# --------------------------------------------------------------------------- #
def test_zero_byte_input_job_succeeds_immediately():
    sim = SimulatedCluster(2)
    sim.ingest("/empty", 0)
    conf = JobConf(name="z", workload="aes", backend=Backend.JAVA_PPE,
                   input_path="/empty", num_map_tasks=4)
    result = sim.run_job(conf)
    assert result.state is JobState.SUCCEEDED
    assert result.num_maps == 0
    # Only setup + cleanup elapsed.
    assert result.makespan_s < CAL.job_setup_s + CAL.job_cleanup_s + 1


def test_single_map_task_job():
    sim = SimulatedCluster(1)
    sim.ingest("/in", 64 * MB)
    conf = JobConf(name="one", workload="aes", backend=Backend.JAVA_PPE,
                   input_path="/in", num_map_tasks=1)
    result = sim.run_job(conf)
    assert result.state is JobState.SUCCEEDED
    assert result.num_maps == 1
    assert result.total_records == 1


def test_more_mappers_than_data_blocks():
    """num_map_tasks exceeding block count still tiles correctly."""
    sim = SimulatedCluster(2)
    sim.ingest("/in", 64 * MB)  # one block
    conf = JobConf(name="many", workload="aes", backend=Backend.JAVA_PPE,
                   input_path="/in", num_map_tasks=4)
    result = sim.run_job(conf)
    assert result.state is JobState.SUCCEEDED
    assert result.counters["map_input_bytes"] == 64 * MB


def test_missing_input_file_fails_job_cleanly():
    sim = SimulatedCluster(2)
    conf = JobConf(name="ghost", workload="aes", backend=Backend.JAVA_PPE,
                   input_path="/does-not-exist", num_map_tasks=2)
    sim.start()
    job = sim.jobtracker.submit_job(conf)
    result = sim.env.run(job.completion)
    assert result.state is JobState.FAILED
    assert "job setup failed" in result.failure_reason
    # The scheduler survives: a subsequent valid job still runs.
    sim.ingest("/in", 64 * MB)
    ok = sim.run_job(JobConf(name="after", workload="aes",
                             backend=Backend.JAVA_PPE,
                             input_path="/in", num_map_tasks=2))
    assert ok.state is JobState.SUCCEEDED


# --------------------------------------------------------------------------- #
# Kernel bridge                                                                 #
# --------------------------------------------------------------------------- #
def make_node(with_cells=True, with_gpu=False):
    env = Environment()
    node = Node(env, 1, QS22_SPEC, CAL)
    if with_cells:
        from repro.cell.processor import CellProcessor

        node.cells = [CellProcessor(env, 0, CAL), CellProcessor(env, 1, CAL)]
    if with_gpu:
        node.gpus = [GPUDevice(env, 0)]
    return env, node


def test_bridge_empty_backend_is_free():
    env, node = make_node()
    kernel = MapKernel(node, 0, Backend.EMPTY, "aes", CAL)

    def run():
        yield from kernel.process_record(64 * MB)
        yield from kernel.run_samples(1e9)
        return env.now

    assert env.run(env.process(run())) == 0.0
    assert kernel.kernel_busy_s == 0.0


def test_bridge_slot_selects_cell_socket():
    env, node = make_node()
    k0 = MapKernel(node, 0, Backend.CELL_SPE_DIRECT, "aes", CAL)
    k1 = MapKernel(node, 1, Backend.CELL_SPE_DIRECT, "aes", CAL)
    assert k0._runtime.cell is node.cells[0]
    assert k1._runtime.cell is node.cells[1]


def test_bridge_java_busy_accounting():
    env, node = make_node(with_cells=False)
    kernel = MapKernel(node, 0, Backend.JAVA_PPE, "aes", CAL)

    def run():
        yield from kernel.process_record(16 * MB)

    env.run(env.process(run()))
    assert kernel.kernel_busy_s == pytest.approx(16 * MB / CAL.aes_ppe_bw)
    assert node.kernel_busy_s == kernel.kernel_busy_s


def test_bridge_gpu_busy_is_device_time():
    env, node = make_node(with_cells=False, with_gpu=True)
    kernel = MapKernel(node, 0, Backend.GPU_TESLA, "pi", CAL)

    def run():
        yield from kernel.run_samples(1e9)

    env.run(env.process(run()))
    assert kernel.kernel_busy_s == pytest.approx(1e9 / CAL.gpu_pi_rate, rel=0.01)


def test_bridge_missing_cell_raises():
    env, node = make_node(with_cells=False)
    with pytest.raises(RuntimeError, match="Cell socket"):
        MapKernel(node, 0, Backend.CELL_SPE_DIRECT, "aes", CAL)


# --------------------------------------------------------------------------- #
# GPU runtime PCIe-bound regime                                                 #
# --------------------------------------------------------------------------- #
def test_gpu_pcie_bound_when_kernel_is_fast():
    """With an absurdly fast AES kernel, staging dominates and the
    steady-state bandwidth pins to the PCIe rate."""
    env = Environment()
    fast = GPUSpec(name="fast", pcie_bw=2.0 * GB, aes_bw=100.0 * GB,
                   pi_rate=1e9, kernel_launch_s=0.0, context_init_s=0.0)
    rt = GPUOffloadRuntime(GPUDevice(env, 0, fast))
    assert rt.steady_state_bw() == pytest.approx(2.0 * GB)


def test_gpu_zero_bytes():
    env = Environment()
    rt = GPUOffloadRuntime(GPUDevice(env, 0))

    def run():
        result = yield from rt.offload_bytes(0)
        return result

    result = env.run(env.process(run()))
    assert result.bytes_processed == 0


# --------------------------------------------------------------------------- #
# Output-size table                                                             #
# --------------------------------------------------------------------------- #
def test_map_output_bytes_by_workload():
    aes = JobConf(name="a", workload="aes", input_path="/x")
    assert _map_output_bytes(aes, 100) == 100
    empty = JobConf(name="e", workload="empty", input_path="/x")
    assert _map_output_bytes(empty, 100) == 0
    pi = JobConf(name="p", workload="pi", samples=1, num_map_tasks=1)
    assert _map_output_bytes(pi, 0) == 128


# --------------------------------------------------------------------------- #
# Placement determinism                                                         #
# --------------------------------------------------------------------------- #
def test_placement_deterministic_per_seed():
    def homes(seed):
        sim = SimulatedCluster(4, seed=seed)
        sim.ingest("/in", 8 * 64 * MB)
        return [b.locations[0] for b in sim.namenode.file_meta("/in").blocks]

    assert homes(7) == homes(7)
