"""Batched heartbeat service: byte-equivalence with the serial loop.

The JobTracker's ``_main_loop`` drains every already-queued message in
one service pass (one ``get()`` wake per pass). The contract is that a
pass is *byte-identical* to the pre-batching get-per-message loop: each
message still pays its own serialized service time and is handled in
arrival order, so batching may only shave Python overhead — never move
a decision. These tests pin that contract by running the same workloads
under the real batched loop and under a verbatim replica of the old
serial loop, across both engine modes and both model modes, and by
property-testing the vectorized kernel cost models against their scalar
forms bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.cell.processor import CellProcessor
from repro.cell.runtime import CellMapReduceRuntime, DirectSPERuntime, OffloadRuntime
from repro.core.simexec import run_workload_mix
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.messages import Heartbeat, TaskDone, TaskFailed
from repro.perf.calibration import MB, PAPER_CALIBRATION
from repro.perf.kernels import KernelPerfModel, RatePerfModel, SamplesPerfModel
from repro.sim.engine import Environment


def _serial_main_loop(self):
    """The pre-batching service loop, verbatim: one ``get()`` per
    message, one service slice, one dispatch."""
    service_s = self.calib.jobtracker_service_s
    while True:
        msg, reply_box = yield self.inbox.get()
        yield self.env.pooled_timeout(service_s)
        if isinstance(msg, Heartbeat):
            reply = self._handle_heartbeat(msg)
            yield reply_box.put(reply)
        elif isinstance(msg, TaskDone):
            self._handle_done(msg)
        elif isinstance(msg, TaskFailed):
            self._handle_failed(msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown message {msg!r}")


_BATCH_ONLY_KEYS = ("heartbeat_batches", "heartbeat_batch_hist")


def _run_mix(serial, engine_ref=False, model_ref=False, seed=31, num_jobs=3,
             stagger_s=3.0):
    """One traced multi-job mix; returns (mean completion, assignment
    trace, decision counters)."""
    prev_e = engine.set_reference_mode(engine_ref)
    prev_m = modelmode.set_model_reference(model_ref)
    orig_loop = JobTracker._main_loop
    try:
        if serial:
            JobTracker._main_loop = _serial_main_loop
        mix, sim = run_workload_mix(
            8,
            num_jobs=num_jobs,
            scheduler="fair",
            stagger_s=stagger_s,
            data_gb=0.5,
            samples=2e9,
            accelerated_fraction=0.5,
            seed=seed,
            trace=True,
            return_cluster=True,
        )
        assert mix.succeeded
        trace = [
            (r.time, r.attrs["job"], r.attrs["kind"], r.attrs["task"],
             r.attrs["tracker"])
            for r in sim.cluster.tracer.records
            if r.event == "task_assigned"
        ]
        return mix.mean_completion_s, trace, sim.jobtracker.decision_counters()
    finally:
        JobTracker._main_loop = orig_loop
        engine.set_reference_mode(prev_e)
        modelmode.set_model_reference(prev_m)


def _without_batch_keys(counters):
    return {k: v for k, v in counters.items() if k not in _BATCH_ONLY_KEYS}


@pytest.mark.parametrize("engine_ref", [False, True])
@pytest.mark.parametrize("model_ref", [False, True])
def test_batched_pass_identical_to_serial_loop(engine_ref, model_ref):
    """Same mean completion, same assignment trace, same decision
    counters (minus the batch histogram only the batched loop keeps) in
    every engine-mode x model-mode combination."""
    b_mean, b_trace, b_counters = _run_mix(
        serial=False, engine_ref=engine_ref, model_ref=model_ref)
    s_mean, s_trace, s_counters = _run_mix(
        serial=True, engine_ref=engine_ref, model_ref=model_ref)
    assert b_mean == s_mean
    assert b_trace == s_trace
    assert _without_batch_keys(b_counters) == _without_batch_keys(s_counters)
    # The serial replica never tallies passes; the real loop must.
    assert s_counters["heartbeat_batches"] == 0
    assert b_counters["heartbeat_batches"] > 0


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_jobs=st.integers(min_value=2, max_value=4),
    stagger_s=st.sampled_from([0.0, 2.0, 7.5]),
)
def test_batched_serial_equivalence_property(seed, num_jobs, stagger_s):
    """Equivalence holds across seeds, job counts, and arrival shapes
    (burst vs staggered), not just the hand-picked case above."""
    batched = _run_mix(serial=False, seed=seed, num_jobs=num_jobs,
                       stagger_s=stagger_s)
    serial = _run_mix(serial=True, seed=seed, num_jobs=num_jobs,
                      stagger_s=stagger_s)
    assert batched[0] == serial[0]
    assert batched[1] == serial[1]
    assert _without_batch_keys(batched[2]) == _without_batch_keys(serial[2])


def test_batch_histogram_accounts_for_every_heartbeat():
    """The surfaced histogram is complete: its passes sum to the batch
    counter and its sizes sum to the heartbeat counter — and a
    contended multi-job mix actually produces multi-message passes."""
    _, _, counters = _run_mix(serial=False)
    hist = counters["heartbeat_batch_hist"]
    assert hist, "batched loop recorded no service passes"
    assert all(isinstance(k, str) for k in hist)
    assert counters["heartbeat_batches"] == sum(hist.values())
    assert counters["heartbeats"] == sum(int(k) * v for k, v in hist.items())
    assert any(int(k) >= 2 for k in hist), "no same-instant batching occurred"


# -- vectorized kernel cost models -------------------------------------------

_POS = st.floats(min_value=1e-6, max_value=1e15, allow_nan=False,
                 allow_infinity=False)
_STARTUP = st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                     allow_infinity=False)
_WORKS = st.lists(
    st.floats(min_value=0.0, max_value=1e18, allow_nan=False,
              allow_infinity=False),
    max_size=50,
)


@given(bandwidth=_POS, startup=_STARTUP, works=_WORKS)
def test_rate_model_batch_is_bitwise_scalar(bandwidth, startup, works):
    model = RatePerfModel(bandwidth_bps=bandwidth, startup_s=startup)
    batch = model.time_for_batch(works)
    assert batch.dtype == np.float64 and len(batch) == len(works)
    for work, t in zip(works, batch):
        assert float(t) == model.time_for(work)


@given(rate=_POS, startup=_STARTUP, works=_WORKS)
def test_samples_model_batch_is_bitwise_scalar(rate, startup, works):
    model = SamplesPerfModel(rate_per_s=rate, startup_s=startup)
    batch = model.time_for_batch(works)
    assert batch.dtype == np.float64 and len(batch) == len(works)
    for work, t in zip(works, batch):
        assert float(t) == model.time_for(work)


def test_batch_zero_work_is_exactly_zero():
    model = RatePerfModel(bandwidth_bps=123.0, startup_s=7.0)
    assert model.time_for_batch([0.0, 1.0])[0] == 0.0
    model = SamplesPerfModel(rate_per_s=123.0, startup_s=7.0)
    assert model.time_for_batch([0.0, 1.0])[0] == 0.0


def test_batch_rejects_negative_work():
    with pytest.raises(ValueError):
        RatePerfModel(bandwidth_bps=1e6).time_for_batch([1.0, -2.0])
    with pytest.raises(ValueError):
        SamplesPerfModel(rate_per_s=1e6).time_for_batch([-1.0])


def test_base_class_batch_falls_back_to_scalar_loop():
    class Quadratic(KernelPerfModel):
        def time_for(self, work):
            return 0.5 + work * work

    model = Quadratic()
    works = [0.0, 1.5, 3.25]
    assert list(model.time_for_batch(works)) == [model.time_for(w) for w in works]


# -- analytic offload closed forms -------------------------------------------


def _direct_runtime():
    env = Environment()
    cell = CellProcessor(env, 0, PAPER_CALIBRATION)
    return DirectSPERuntime(cell, PAPER_CALIBRATION,
                            startup_s=PAPER_CALIBRATION.pi_spu_init_s)


@settings(max_examples=25, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=1e13, allow_nan=False,
                  allow_infinity=False),
        min_size=1, max_size=16,
    ),
    rate=st.floats(min_value=1e3, max_value=1e12, allow_nan=False,
                   allow_infinity=False),
)
def test_samples_time_batch_is_bitwise_scalar(samples, rate):
    runtime = _direct_runtime()
    batch = runtime.analytic_samples_time_batch(samples, rate)
    for s, t in zip(samples, batch):
        assert float(t) == runtime.analytic_samples_time(s, rate)


def test_analytic_time_memo_is_transparent():
    """The memo must be invisible: cached == uncached, shared across
    same-shape runtimes, and never collides across runtime classes."""
    nbytes, spe_bw = 8 * MB, PAPER_CALIBRATION.aes_spe_bw
    OffloadRuntime._ANALYTIC_MEMO.clear()
    direct = _direct_runtime()
    first = direct.analytic_time(nbytes, spe_bw)
    assert OffloadRuntime._ANALYTIC_MEMO, "memo not populated"
    assert direct.analytic_time(nbytes, spe_bw) == first
    assert first == direct._analytic_time_uncached(nbytes, spe_bw)
    # Same-parameter runtimes share the entry (one entry, same answer).
    entries = len(OffloadRuntime._ANALYTIC_MEMO)
    assert _direct_runtime().analytic_time(nbytes, spe_bw) == first
    assert len(OffloadRuntime._ANALYTIC_MEMO) == entries
    # A different runtime class keys separately and stays exact.
    env = Environment()
    mr = CellMapReduceRuntime(
        CellProcessor(env, 0, PAPER_CALIBRATION), PAPER_CALIBRATION)
    assert mr.analytic_time(nbytes, spe_bw) == mr._analytic_time_uncached(
        nbytes, spe_bw)
    assert mr.analytic_time(nbytes, spe_bw) != first
