"""Behavioural tests for the Hadoop runtime: scheduling, locality,
heartbeats, completion accounting — on small simulated clusters."""

import pytest

from repro.perf import Backend, PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.core.simexec import SimulatedCluster
from repro.hadoop import JobConf
from repro.hadoop.job import JobState, TaskKind

CAL = PAPER_CALIBRATION


def run_small_encrypt(nodes=2, data=2 * GB, backend=Backend.JAVA_PPE, **conf_kw):
    sim = SimulatedCluster(nodes, trace=True)
    sim.ingest("/in", int(data))
    conf = JobConf(
        name="t",
        workload="aes",
        backend=backend,
        input_path="/in",
        num_map_tasks=conf_kw.pop("num_map_tasks", nodes * 2),
        **conf_kw,
    )
    return sim, sim.run_job(conf)


def test_job_succeeds_and_accounts_everything():
    sim, result = run_small_encrypt()
    assert result.state is JobState.SUCCEEDED
    assert result.num_maps == 4
    assert result.counters["map_input_bytes"] == 2 * GB
    assert result.counters["map_output_bytes"] == 2 * GB
    assert result.total_records == 32  # 2 GB / 64 MB
    assert result.makespan_s > 0
    assert result.launch_time > result.submit_time


def test_locality_scheduling_keeps_reads_local():
    sim, result = run_small_encrypt(nodes=4, data=8 * GB)
    assert result.remote_fraction < 0.05
    assert result.counters.get("data_local_maps", 0) == result.num_maps


def test_all_mapper_slots_used():
    sim, result = run_small_encrypt(nodes=2, data=4 * GB)
    trackers_used = {t.tracker for t in result.tasks if t.kind is TaskKind.MAP}
    assert trackers_used == {1, 2}


def test_task_waves_when_splits_exceed_slots():
    sim, result = run_small_encrypt(nodes=2, data=4 * GB, num_map_tasks=8)
    # 8 tasks, 4 slots -> at least two scheduling waves.
    assert result.num_maps == 8
    starts = sorted(t.start_time for t in result.tasks)
    assert starts[-1] > starts[0] + CAL.heartbeat_interval_s / 2


def test_empty_mapper_reads_but_writes_nothing():
    sim = SimulatedCluster(2, trace=True)
    sim.ingest("/in", 2 * GB)
    conf = JobConf(
        name="empty",
        workload="empty",
        backend=Backend.EMPTY,
        input_path="/in",
        num_map_tasks=4,
    )
    result = sim.run_job(conf)
    assert result.state is JobState.SUCCEEDED
    assert result.counters["map_input_bytes"] == 2 * GB
    assert result.counters["map_output_bytes"] == 0
    assert result.kernel_busy_s == 0


def test_cell_backend_requires_accelerator():
    sim = SimulatedCluster(2, accelerated_fraction=0.0)
    sim.ingest("/in", 1 * GB)
    conf = JobConf(
        name="cell-on-bare",
        workload="aes",
        backend=Backend.CELL_SPE_DIRECT,
        input_path="/in",
        num_map_tasks=4,
        max_attempts=2,
    )
    result = sim.run_job(conf)
    assert result.state is JobState.FAILED
    assert "Cell socket" in result.failure_reason


def test_pi_job_runs_reduce_after_maps():
    sim = SimulatedCluster(2, trace=True)
    conf = JobConf(
        name="pi", workload="pi", backend=Backend.JAVA_PPE,
        samples=1e9, num_map_tasks=4, num_reduce_tasks=1,
    )
    result = sim.run_job(conf)
    assert result.state is JobState.SUCCEEDED
    assert result.num_reduces == 1
    reduce_task = next(t for t in result.tasks if t.kind is TaskKind.REDUCE)
    assert reduce_task.start_time >= result.maps_done_time
    assert result.counters["reduce_shuffle_bytes"] > 0


def test_pi_samples_divided_evenly():
    sim = SimulatedCluster(2)
    conf = JobConf(
        name="pi", workload="pi", backend=Backend.JAVA_PPE,
        samples=1e8, num_map_tasks=4,
    )
    result = sim.run_job(conf)
    maps = [t for t in result.tasks if t.kind is TaskKind.MAP]
    # Equal work -> near-equal durations.
    durs = [t.duration for t in maps]
    assert max(durs) - min(durs) < 0.5


def test_kernel_busy_tracked_for_java():
    sim, result = run_small_encrypt(backend=Backend.JAVA_PPE)
    expected = 2 * GB / CAL.aes_ppe_bw
    assert result.kernel_busy_s == pytest.approx(expected, rel=0.05)


def test_kernel_busy_much_smaller_for_cell():
    _sim_j, rj = run_small_encrypt(backend=Backend.JAVA_PPE)
    _sim_c, rc = run_small_encrypt(backend=Backend.CELL_SPE_DIRECT)
    # Cell kernels are ~44x faster, so busy time collapses while the
    # makespan barely moves (the paper's energy argument in one assert).
    assert rc.kernel_busy_s < rj.kernel_busy_s / 20
    assert rc.makespan_s == pytest.approx(rj.makespan_s, rel=0.15)


def test_trace_records_job_lifecycle():
    sim, result = run_small_encrypt()
    assert sim.cluster.tracer.count("jobtracker", "job_started") == 1
    assert sim.cluster.tracer.count("jobtracker", "task_assigned") >= 4
    assert sim.cluster.tracer.count("jobtracker", "job_done") == 1


def test_two_jobs_back_to_back():
    sim = SimulatedCluster(2)
    sim.ingest("/in", 1 * GB)
    conf1 = JobConf(name="j1", workload="aes", backend=Backend.JAVA_PPE,
                    input_path="/in", num_map_tasks=4)
    r1 = sim.run_job(conf1)
    conf2 = JobConf(name="j2", workload="pi", backend=Backend.JAVA_PPE,
                    samples=1e8, num_map_tasks=4)
    r2 = sim.run_job(conf2)
    assert r1.state is JobState.SUCCEEDED
    assert r2.state is JobState.SUCCEEDED
    assert r2.submit_time >= r1.finish_time


def test_determinism_same_seed_same_makespan():
    _s1, r1 = run_small_encrypt()
    _s2, r2 = run_small_encrypt()
    assert r1.makespan_s == r2.makespan_s


def test_different_seeds_differ_slightly():
    sim1 = SimulatedCluster(2, seed=1)
    sim1.ingest("/in", 2 * GB)
    conf = JobConf(name="a", workload="aes", backend=Backend.JAVA_PPE,
                   input_path="/in", num_map_tasks=4)
    r1 = sim1.run_job(conf)
    sim2 = SimulatedCluster(2, seed=2)
    sim2.ingest("/in", 2 * GB)
    r2 = sim2.run_job(conf)
    # Heartbeat jitter shifts task start times but not the magnitude.
    assert r1.makespan_s != r2.makespan_s
    assert r1.makespan_s == pytest.approx(r2.makespan_s, rel=0.2)
