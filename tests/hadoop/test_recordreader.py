"""Unit tests for the RecordReader delivery path."""

import pytest

from repro.perf import PAPER_CALIBRATION
from repro.perf.calibration import MB
from repro.cluster import Network, Node, QS22_SPEC
from repro.hadoop import InputFormat, RecordReader
from repro.hdfs import DataNode, HDFSClient, NameNode
from repro.sim import Environment
from repro.sim.rng import RandomStreams

CAL = PAPER_CALIBRATION


def make_env(n_nodes=2, size=256 * MB, payload=None, block_size=None, calib=CAL):
    env = Environment()
    net = Network(env, calib)
    nn = NameNode(env, block_size=block_size or calib.hdfs_block_bytes, rng=RandomStreams(3))
    nodes = []
    for i in range(n_nodes):
        node = Node(env, i + 1, QS22_SPEC, calib)
        net.attach(node)
        nn.register_datanode(DataNode(node, net))
        nodes.append(node)
    client = HDFSClient(nn)
    meta = client.ingest_file("/in", size, payload=payload, placement="contiguous")
    return env, client, nodes, meta


def test_record_ranges_tile_the_split():
    env, client, nodes, meta = make_env(size=200 * MB)
    splits = InputFormat.compute_splits(meta, num_splits=2)
    rr = RecordReader(client, splits[0], nodes[0], CAL)
    ranges = rr.record_ranges()
    assert sum(l for _o, l in ranges) == splits[0].length
    assert ranges[0][0] == splits[0].offset


def test_delivery_dominated_by_software_path():
    """One 64 MB record takes ~'several seconds' (the paper's headline
    measurement): the 10 MB/s software stage dominates disk + loopback."""
    env, client, nodes, meta = make_env(size=64 * MB)
    split = InputFormat.compute_splits(meta, num_splits=1)[0]
    reader = next(n for n in nodes if n.node_id == meta.blocks[0].locations[0])
    rr = RecordReader(client, split, reader, CAL)

    def go():
        yield from rr.read_record(split.offset, split.length, 0)
        return env.now

    elapsed = env.run(env.process(go()))
    software = CAL.recordreader_per_record_s + 64 * MB / CAL.recordreader_stream_bw
    assert elapsed > software  # software floor plus hardware stages
    assert elapsed < software * 1.5
    assert 4.0 < elapsed < 10.0  # "several seconds"


def test_local_record_counts_no_remote_bytes():
    env, client, nodes, meta = make_env(size=64 * MB)
    split = InputFormat.compute_splits(meta, num_splits=1)[0]
    reader = next(n for n in nodes if n.node_id == meta.blocks[0].locations[0])
    rr = RecordReader(client, split, reader, CAL)

    def go():
        batch = yield from rr.read_record(split.offset, split.length, 0)
        return batch

    batch = env.run(env.process(go()))
    assert batch.remote_bytes == 0
    assert rr.bytes_read == 64 * MB


def test_remote_record_counts_remote_bytes():
    env, client, nodes, meta = make_env(size=64 * MB)
    split = InputFormat.compute_splits(meta, num_splits=1)[0]
    remote_reader = next(n for n in nodes if n.node_id != meta.blocks[0].locations[0])
    rr = RecordReader(client, split, remote_reader, CAL)

    def go():
        batch = yield from rr.read_record(split.offset, split.length, 0)
        return batch

    batch = env.run(env.process(go()))
    assert batch.remote_bytes == 64 * MB


def test_payload_reassembly_across_blocks():
    """A record spanning two blocks reassembles the exact byte range."""
    payload = bytes(range(256)) * 8  # 2048 bytes
    calib = CAL.evolve(record_bytes=1024)
    env, client, nodes, meta = make_env(
        size=2048, payload=payload, block_size=512, calib=calib
    )
    split = InputFormat.compute_splits(meta, num_splits=1)[0]
    rr = RecordReader(client, split, nodes[0], calib)

    def go():
        parts = []
        for i, (off, length) in enumerate(rr.record_ranges()):
            batch = yield from rr.read_record(off, length, i)
            parts.append(batch.payload)
        return b"".join(parts)

    got = env.run(env.process(go()))
    assert got == payload


def test_sub_block_record_payload():
    payload = bytes(range(100)) * 10  # 1000 bytes
    calib = CAL.evolve(record_bytes=300)
    env, client, nodes, meta = make_env(
        size=1000, payload=payload, block_size=1000, calib=calib
    )
    split = InputFormat.compute_splits(meta, num_splits=1)[0]
    rr = RecordReader(client, split, nodes[0], calib)

    def go():
        batch = yield from rr.read_record(300, 300, 1)
        return batch

    batch = env.run(env.process(go()))
    assert batch.payload == payload[300:600]


def test_num_records_for_paper_config():
    # 1 GB split at 64 MB records = 16 records (Fig. 3's decomposition).
    env, client, nodes, meta = make_env(size=1024 * MB)
    split = InputFormat.compute_splits(meta, num_splits=1)[0]
    rr = RecordReader(client, split, nodes[0], CAL)
    assert rr.num_records == 16
