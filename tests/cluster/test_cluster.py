"""Unit tests for node specs, disks, network, and topology assembly."""

import pytest

from repro.perf import PAPER_CALIBRATION
from repro.perf.calibration import GB, MB
from repro.cluster import (
    Cluster,
    ClusterSpec,
    Disk,
    JS22_SPEC,
    Network,
    Node,
    QS22_SPEC,
    build_cluster,
)
from repro.sim import Environment

CAL = PAPER_CALIBRATION


# --------------------------------------------------------------------------- #
# Specs                                                                         #
# --------------------------------------------------------------------------- #
def test_qs22_matches_paper():
    assert QS22_SPEC.cell_sockets == 2
    assert QS22_SPEC.memory_bytes == 8 * GB
    assert QS22_SPEC.has_accelerator
    assert all(c.clock_hz == 3.2e9 for c in QS22_SPEC.cpus)


def test_js22_matches_paper():
    assert JS22_SPEC.total_cores == 4
    assert JS22_SPEC.cell_sockets == 0
    assert not JS22_SPEC.has_accelerator
    assert JS22_SPEC.cpus[0].clock_hz == 4.0e9


# --------------------------------------------------------------------------- #
# Node                                                                          #
# --------------------------------------------------------------------------- #
def test_node_has_disk_loopback_cpu():
    env = Environment()
    node = Node(env, 1, QS22_SPEC, CAL)
    assert node.disk.bandwidth_bps == CAL.disk_bw
    assert node.loopback.bandwidth_bps == CAL.loopback_bw
    assert node.cpu.capacity == 2  # one PPE per Cell socket


def test_node_kernel_busy_accounting():
    env = Environment()
    node = Node(env, 1, QS22_SPEC, CAL)
    node.record_kernel_busy(1.5)
    node.record_kernel_busy(0.5)
    assert node.kernel_busy_s == 2.0
    with pytest.raises(ValueError):
        node.record_kernel_busy(-1)


def test_node_without_cells_has_no_accelerator():
    env = Environment()
    node = Node(env, 1, QS22_SPEC, CAL)
    assert not node.has_accelerator  # cells attached by the topology builder


# --------------------------------------------------------------------------- #
# Disk                                                                          #
# --------------------------------------------------------------------------- #
def test_disk_read_time_includes_seek():
    env = Environment()
    disk = Disk(env, bandwidth_bps=100 * MB, seek_s=0.01)

    def go():
        yield from disk.read(100 * MB)
        return env.now

    assert env.run(env.process(go())) == pytest.approx(1.01)
    assert disk.bytes_read == 100 * MB


def test_disk_requests_serialize():
    env = Environment()
    disk = Disk(env, bandwidth_bps=100 * MB, seek_s=0.0)
    ends = []

    def go():
        yield from disk.write(50 * MB)
        ends.append(env.now)

    env.process(go())
    env.process(go())
    env.run()
    assert ends == [pytest.approx(0.5), pytest.approx(1.0)]
    assert disk.bytes_written == 100 * MB


# --------------------------------------------------------------------------- #
# Network                                                                       #
# --------------------------------------------------------------------------- #
def make_two_nodes():
    env = Environment()
    net = Network(env, CAL)
    a = Node(env, 1, QS22_SPEC, CAL)
    b = Node(env, 2, QS22_SPEC, CAL)
    net.attach(a)
    net.attach(b)
    return env, net, a, b


def test_same_node_transfer_uses_loopback():
    env, net, a, _b = make_two_nodes()

    def go():
        yield from net.transfer(a, a, 64 * MB)

    env.process(go())
    env.run()
    assert net.local_bytes == 64 * MB
    assert net.remote_bytes == 0
    assert a.loopback.bytes_transferred == 64 * MB


def test_remote_transfer_crosses_nics():
    env, net, a, b = make_two_nodes()

    def go():
        yield from net.transfer(a, b, 64 * MB)

    env.process(go())
    env.run()
    assert net.remote_bytes == 64 * MB
    assert net.nic(1).bytes_sent == 64 * MB
    assert net.nic(2).bytes_received == 64 * MB


def test_remote_slower_than_wire_due_to_stages():
    env, net, a, b = make_two_nodes()

    def go():
        yield from net.transfer(a, b, 117 * MB)  # 1 second at NIC rate
        return env.now

    elapsed = env.run(env.process(go()))
    assert elapsed > 1.0  # NIC + backplane + NIC serialization


def test_double_attach_rejected():
    env, net, a, _b = make_two_nodes()
    with pytest.raises(ValueError):
        net.attach(a)


def test_transfer_time_estimate_orders_local_remote():
    env, net, _a, _b = make_two_nodes()
    assert net.transfer_time_estimate(False, MB) < net.transfer_time_estimate(True, MB)


# --------------------------------------------------------------------------- #
# Topology                                                                      #
# --------------------------------------------------------------------------- #
def test_build_cluster_shape():
    cl = build_cluster(8)
    assert len(cl.workers) == 8
    assert cl.master.spec is JS22_SPEC
    assert all(len(w.cells) == 2 for w in cl.workers)
    assert cl.total_mapper_slots() == 16
    assert len(cl.nodes) == 9


def test_node_by_id_roundtrip():
    cl = build_cluster(4)
    for n in cl.nodes:
        assert cl.node_by_id(n.node_id) is n


def test_accelerated_fraction_mixes_nodes():
    cl = build_cluster(10, accelerated_fraction=0.5)
    assert len(cl.accelerated_workers) == 5
    bare = [w for w in cl.workers if not w.has_accelerator]
    assert len(bare) == 5
    assert all(not w.cells for w in bare)


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(worker_nodes=0)
    with pytest.raises(ValueError):
        ClusterSpec(worker_nodes=4, accelerated_fraction=1.5)


def test_cluster_hostnames_unique():
    cl = build_cluster(12)
    names = [n.hostname for n in cl.nodes]
    assert len(set(names)) == len(names)
