"""End-to-end fleet tests over real sockets and threads.

The centerpiece is the acceptance matrix: a fleet sweep with two
injected worker deaths **and** a coordinator crash/restart must merge
byte-identical (sha256) to a serial ``run_sweep`` of the same request,
in all four engine×model reference-mode combinations — plus the
fail-fast paths (fully dead fleet, poison quarantine) that must error
clearly instead of hanging.
"""

import threading

import pytest

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.experiments import run_sweep
from repro.fabric import (
    CoordinatorChaos,
    FleetCoordinator,
    FleetError,
    FleetWorker,
    TrackerConfig,
    WorkerChaos,
    run_chaos_fleet,
)
from repro.serve.client import Address

OV = {"nodes": [2, 3, 4, 5, 6], "samples": 1e8}


def serial_sha(scenario, overrides, reference, model_reference):
    prev = engine.set_reference_mode(reference)
    prev_model = modelmode.set_model_reference(model_reference)
    try:
        return run_sweep(scenario, overrides).sha256()
    finally:
        engine.set_reference_mode(prev)
        modelmode.set_model_reference(prev_model)


def test_fleet_matches_serial_happy_path(tmp_path):
    serial = serial_sha("_fleet_synth", None, engine.REFERENCE_MODE,
                        modelmode.REFERENCE_MODE)
    result, stats, reports = run_chaos_fleet(
        "_fleet_synth", journal_path=tmp_path / "j.jsonl", workers=3,
        timeout_s=60.0, linger_s=0.3)
    assert result.sha256() == serial
    acct = {**stats}
    assert acct["accepted"] == acct["total"] == 8
    assert acct["duplicates"] == 0
    assert not (tmp_path / "j.jsonl").exists()  # removed on success


def test_duplicated_and_delayed_deliveries_dedup(tmp_path):
    serial = serial_sha("_fleet_synth", None, engine.REFERENCE_MODE,
                        modelmode.REFERENCE_MODE)
    result, stats, reports = run_chaos_fleet(
        "_fleet_synth", journal_path=tmp_path / "j.jsonl", workers=2,
        worker_chaos=[WorkerChaos(duplicate_results=True,
                                  delay_results_s=0.01)],
        timeout_s=60.0, linger_s=0.3)
    assert result.sha256() == serial
    dup_worker = next(r for r in reports if r.get("duplicates_sent"))
    assert stats["duplicates"] >= dup_worker["duplicates_sent"]
    assert stats["accepted"] == stats["total"]


@pytest.mark.parametrize(
    "reference,model_reference",
    [(False, False), (False, True), (True, False), (True, True)],
    ids=["opt-opt", "opt-refmodel", "refengine-opt", "ref-ref"],
)
def test_acceptance_two_kills_one_coordinator_restart(
        tmp_path, reference, model_reference):
    """The ISSUE's acceptance bar, per mode combo: >=2 worker deaths
    plus a coordinator crash/restart, byte-identical to serial."""
    serial = serial_sha("fig8", OV, reference, model_reference)
    # Both initial workers carry a kill order, so both deaths are
    # guaranteed to fire (each must deliver the fleet's early results);
    # the harness respawns clean replacements that finish the sweep.
    result, stats, reports = run_chaos_fleet(
        "fig8", OV, reference=reference, model_reference=model_reference,
        journal_path=tmp_path / "j.jsonl", workers=2,
        worker_chaos=[WorkerChaos(kill_after_results=1),
                      WorkerChaos(kill_after_results=1)],
        coordinator_chaos=CoordinatorChaos(crash_after_results=3),
        timeout_s=90.0, linger_s=0.3)
    assert result.sha256() == serial
    assert stats["restarts"] == 1
    assert sum(1 for r in reports if r.get("killed")) >= 2
    # Exactly-once across the crash: journaled points count as
    # prefilled in the second incarnation, fresh ones as accepted.
    assert stats["accepted"] + stats["prefilled"] == stats["total"]
    assert stats["completed"] == stats["total"]


def test_heartbeat_silence_triggers_redispatch_but_not_byte_drift(tmp_path):
    serial = serial_sha("_fleet_slow", None, engine.REFERENCE_MODE,
                        modelmode.REFERENCE_MODE)
    # Worker 0 goes silent for well past the worker timeout after its
    # first delivery; the detector revokes its leases, yet its late
    # work (delivered after re-registering) is still merged or deduped.
    result, stats, _ = run_chaos_fleet(
        "_fleet_slow", journal_path=tmp_path / "j.jsonl", workers=2,
        worker_chaos=[WorkerChaos(silences=((1, 2.5),))],
        config=TrackerConfig(worker_timeout_s=0.5, lease_timeout_s=15.0,
                             retry_backoff_s=0.1),
        timeout_s=60.0, linger_s=0.3)
    assert result.sha256() == serial
    assert stats["dead_workers"] >= 1
    assert stats["accepted"] + stats["duplicates"] >= stats["total"]


def test_fully_dead_fleet_fails_fast_not_hangs(tmp_path):
    # Every worker dies almost immediately and nothing respawns: the
    # coordinator must abort with a clear error, well before the test
    # timeout, instead of waiting for workers that will never return.
    with pytest.raises(FleetError) as err:
        run_chaos_fleet(
            "_fleet_synth", journal_path=tmp_path / "j.jsonl", workers=2,
            worker_chaos=[WorkerChaos(kill_after_results=1),
                          WorkerChaos(kill_after_results=1)],
            respawn_killed=False,
            no_worker_timeout_s=0.5, timeout_s=30.0)
    assert "fully dead" in str(err.value)
    assert "journal preserved" in str(err.value)
    assert (tmp_path / "j.jsonl").exists()  # resume material survives


def test_no_worker_ever_registers_fails_fast():
    coord = FleetCoordinator(
        "_fleet_synth", port=0, no_worker_timeout_s=0.3).start()
    try:
        assert coord.wait(timeout=15.0)
        assert coord.result is None
        assert "no worker ever registered" in coord.error
    finally:
        coord.close()


def test_poison_point_quarantines_and_aborts(tmp_path, fast_config):
    with pytest.raises(FleetError) as err:
        run_chaos_fleet(
            "_fleet_poison", journal_path=tmp_path / "j.jsonl", workers=2,
            config=fast_config, timeout_s=30.0)
    assert "quarantined" in str(err.value)
    assert "poison point k=2" in str(err.value)


def test_worker_refuses_on_request_key_mismatch(monkeypatch):
    coord = FleetCoordinator("_fleet_synth", port=0,
                             no_worker_timeout_s=10.0).start()
    try:
        monkeypatch.setattr("repro.fabric.worker.request_key",
                            lambda *a, **k: "f" * 64)
        worker = FleetWorker(
            Address.parse(f"127.0.0.1:{coord.port}", None), name="drifted")
        with pytest.raises(FleetError) as err:
            worker.run()
        assert "request key mismatch" in str(err.value)
    finally:
        coord.close()


def test_coordinator_register_rejects_foreign_key(tmp_path):
    # The coordinator-side check: a worker re-registering with a stale
    # key (its own code changed between sweeps) is refused outright.
    coord = FleetCoordinator("_fleet_synth", port=0,
                             no_worker_timeout_s=10.0).start()
    try:
        import socket as socket_mod

        from repro.wire import recv_msg, send_msg
        sock = socket_mod.create_connection(("127.0.0.1", coord.port))
        stream = sock.makefile("rwb")
        send_msg(stream, {"type": "register", "worker": "stale",
                          "capacity": 1, "request_key": "0" * 64})
        reply = recv_msg(stream)
        assert reply["type"] == "error"
        assert "request key mismatch" in reply["message"]
        sock.close()
    finally:
        coord.close()


def test_point_cache_prefill_keeps_bytes_identical(tmp_path):
    serial = serial_sha("_fleet_synth", None, engine.REFERENCE_MODE,
                        modelmode.REFERENCE_MODE)
    cache_dir = tmp_path / "cache"
    # First fleet run populates the point cache...
    first, _, _ = run_chaos_fleet(
        "_fleet_synth", cache_dir=cache_dir, workers=2,
        timeout_s=60.0, linger_s=0.3)
    assert first.sha256() == serial
    # ...the second is answered from the whole-sweep cache without any
    # worker executing a point.
    second, stats, reports = run_chaos_fleet(
        "_fleet_synth", cache_dir=cache_dir, workers=1,
        timeout_s=60.0, linger_s=0.3)
    assert second.sha256() == serial
    assert sum(r.get("results_sent", 0) for r in reports) == 0


def test_fleet_metrics_render(tmp_path):
    coord = FleetCoordinator("_fleet_synth", port=0,
                             no_worker_timeout_s=30.0, linger_s=0.2).start()
    worker = FleetWorker(Address.parse(f"127.0.0.1:{coord.port}", None),
                         name="w0", heartbeat_s=0.05)
    t = threading.Thread(target=worker.run, daemon=True)
    t.start()
    try:
        assert coord.wait(timeout=30.0)
        text = coord.render_metrics()
        assert "repro_fleet_completed 8" in text
        assert "repro_fleet_quarantined 0" in text
        assert 'repro_fleet_frames_total{type="heartbeat"}' in text
    finally:
        coord.close()
        t.join(timeout=5.0)
