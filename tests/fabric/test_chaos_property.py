"""Hypothesis chaos property: *any* failure schedule merges to serial.

Random worker kills, heartbeat-silence windows, duplicated deliveries,
and coordinator crash/restart at random points in a fig8 sweep must
always produce a merge byte-identical to the serial result — in both
engine×model reference combos — with exactly-once accounting: every
grid point accepted exactly once, none lost, none double-counted.

The schedules are drawn by Hypothesis but executed deterministically
(all triggers key off delivered-result counts, not wall time), so a
failing example shrinks to a reproducible script.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.modelmode as modelmode
import repro.sim.engine as engine
from repro.experiments import run_sweep
from repro.fabric import CoordinatorChaos, TrackerConfig, WorkerChaos, run_chaos_fleet

OV = {"nodes": [2, 3, 4], "samples": 1e8}
_SERIAL_SHA: dict[tuple[bool, bool], str] = {}


def serial_sha(reference: bool, model_reference: bool) -> str:
    combo = (reference, model_reference)
    if combo not in _SERIAL_SHA:
        prev = engine.set_reference_mode(reference)
        prev_model = modelmode.set_model_reference(model_reference)
        try:
            _SERIAL_SHA[combo] = run_sweep("fig8", OV).sha256()
        finally:
            engine.set_reference_mode(prev)
            modelmode.set_model_reference(prev_model)
    return _SERIAL_SHA[combo]


worker_chaos_st = st.one_of(
    st.none(),
    st.builds(
        WorkerChaos,
        kill_after_results=st.one_of(st.none(), st.integers(1, 3)),
        silences=st.one_of(
            st.just(()),
            st.tuples(st.tuples(st.integers(0, 2),
                                st.floats(0.7, 1.2))),
        ),
        duplicate_results=st.booleans(),
    ),
)

schedule_st = st.fixed_dictionaries({
    "workers": st.integers(2, 3),
    "worker_chaos": st.lists(worker_chaos_st, min_size=0, max_size=3),
    "crash_after": st.one_of(st.none(), st.integers(1, 3)),
})


@pytest.mark.parametrize("reference,model_reference",
                         [(False, False), (True, True)],
                         ids=["opt-opt", "ref-ref"])
@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedule_st)
def test_random_failure_schedules_merge_byte_identical(
        schedule, reference, model_reference):
    expected = serial_sha(reference, model_reference)
    with tempfile.TemporaryDirectory() as td:
        result, stats, reports = run_chaos_fleet(
            "fig8", OV, reference=reference,
            model_reference=model_reference,
            journal_path=Path(td) / "j.jsonl",
            workers=schedule["workers"],
            worker_chaos=schedule["worker_chaos"],
            coordinator_chaos=(
                CoordinatorChaos(crash_after_results=schedule["crash_after"])
                if schedule["crash_after"] is not None else None),
            respawn_killed=True,
            config=TrackerConfig(worker_timeout_s=0.5, lease_timeout_s=15.0,
                                 retry_backoff_s=0.1),
            timeout_s=90.0, linger_s=0.3)

    assert result.sha256() == expected

    # Exactly-once: every point lands once — via a worker in some
    # incarnation ("accepted") or via the journal after a coordinator
    # crash ("prefilled") — and extra deliveries are dropped, not
    # merged. (Worker reports are not asserted on: a worker still in a
    # silence window or reconnect backoff at teardown reports late.)
    assert stats["accepted"] + stats["prefilled"] == stats["total"]
    assert stats["completed"] == stats["total"]
    assert stats["quarantined"] == 0
