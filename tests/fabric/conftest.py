"""Shared fixtures for the fleet fabric tests.

Registers synthetic scenarios once per session (``replace=True`` keeps
re-imports benign) with module-level point functions so any execution
path can resolve them by name:

- ``_fleet_synth`` — pure arithmetic, fast: protocol, lease, and
  byte-identity mechanics without simulation cost;
- ``_fleet_slow`` — sleeps per point: keeps leases in flight long
  enough for failure schedules to land mid-sweep;
- ``_fleet_poison`` — one grid point always raises: the quarantine
  path.
"""

import time

import pytest

from repro.experiments import Scenario, register
from repro.fabric import TrackerConfig


def fleet_synth_point(cfg):
    return {"y": cfg["k"] * cfg["scale"] + cfg["seed"] / 7.0}


def fleet_slow_point(cfg):
    time.sleep(cfg["delay_s"])
    return {"y": cfg["k"] * 2.0 + cfg["seed"] / 11.0}


def fleet_poison_point(cfg):
    if cfg["k"] == cfg["bad_k"]:
        raise ValueError(f"poison point k={cfg['k']}")
    return {"y": float(cfg["k"])}


SYNTH = register(Scenario(
    name="_fleet_synth",
    title="fleet synthetic",
    description="fabric test scenario (fast)",
    run_point=fleet_synth_point,
    grid={"k": tuple(range(8))},
    x="k",
    curves=("y",),
    defaults={"scale": 3.0},
), replace=True)

SLOW = register(Scenario(
    name="_fleet_slow",
    title="fleet slow",
    description="fabric test scenario (sleeps per point)",
    run_point=fleet_slow_point,
    grid={"k": tuple(range(8))},
    x="k",
    curves=("y",),
    defaults={"delay_s": 0.1},
), replace=True)

POISON = register(Scenario(
    name="_fleet_poison",
    title="fleet poison",
    description="fabric test scenario (one point always raises)",
    run_point=fleet_poison_point,
    grid={"k": tuple(range(4))},
    x="k",
    curves=("y",),
    defaults={"bad_k": 2},
), replace=True)


@pytest.fixture
def fast_config():
    """Tracker tuning scaled for tests: every window small enough that
    a scripted failure is detected within a fraction of a second."""
    return TrackerConfig(
        worker_timeout_s=0.5,
        lease_timeout_s=5.0,
        batch_size=2,
        max_attempts=3,
        retry_backoff_s=0.05,
    )
