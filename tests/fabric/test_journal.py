"""The completion journal: resume, stale discard, torn-tail tolerance."""

from repro.fabric import Journal

KEY = "a" * 64
OTHER_KEY = "b" * 64


def test_resume_recovers_recorded_points(tmp_path):
    path = tmp_path / "j.jsonl"
    first = Journal(path, KEY, "synth", total=4).open()
    first.record(0, {"y": 0.5}, 0.1)
    first.record(2, {"y": 2.5}, None)
    first.close()  # the crash: no remove()

    second = Journal(path, KEY, "synth", total=4).open()
    assert second.resumed == {0: ({"y": 0.5}, 0.1), 2: ({"y": 2.5}, None)}
    assert not second.discarded_stale

    # The rewritten journal is immediately durable again: a third
    # incarnation sees both recovered points plus new ones.
    second.record(1, {"y": 1.5}, 0.2)
    second.close()
    third = Journal(path, KEY, "synth", total=4).open()
    assert sorted(third.resumed) == [0, 1, 2]


def test_float_values_round_trip_exactly(tmp_path):
    path = tmp_path / "j.jsonl"
    values = {"y": 0.1 + 0.2, "z": 1e-17, "w": 12345678901234.567}
    j = Journal(path, KEY, "synth", total=1).open()
    j.record(0, values, 0.1)
    j.close()
    resumed = Journal(path, KEY, "synth", total=1).open().resumed
    assert resumed[0][0] == values  # bit-exact, not approximately


def test_stale_journal_is_discarded_not_merged(tmp_path):
    path = tmp_path / "j.jsonl"
    old = Journal(path, OTHER_KEY, "synth", total=4).open()
    old.record(0, {"y": 99.0}, 0.1)
    old.close()

    fresh = Journal(path, KEY, "synth", total=4).open()
    assert fresh.resumed == {}
    assert fresh.discarded_stale


def test_torn_tail_is_dropped(tmp_path):
    path = tmp_path / "j.jsonl"
    j = Journal(path, KEY, "synth", total=4).open()
    j.record(0, {"y": 0.5}, 0.1)
    j.record(1, {"y": 1.5}, 0.1)
    j.close()
    with path.open("a", encoding="utf-8") as fh:
        fh.write('{"index": 2, "values": {"y"')  # crash mid-write

    resumed = Journal(path, KEY, "synth", total=4).open().resumed
    assert sorted(resumed) == [0, 1]


def test_duplicate_and_out_of_range_lines_are_ignored(tmp_path):
    path = tmp_path / "j.jsonl"
    j = Journal(path, KEY, "synth", total=2).open()
    j.record(0, {"y": 1.0}, 0.1)
    j.close()
    with path.open("a", encoding="utf-8") as fh:
        fh.write('{"index": 0, "values": {"y": 999.0}}\n')  # duplicate
        fh.write('{"index": 7, "values": {"y": 1.0}}\n')  # out of range
        fh.write('{"values": {"y": 1.0}}\n')  # missing index

    resumed = Journal(path, KEY, "synth", total=2).open().resumed
    assert resumed == {0: ({"y": 1.0}, 0.1)}  # first occurrence wins


def test_remove_deletes_the_file(tmp_path):
    path = tmp_path / "j.jsonl"
    j = Journal(path, KEY, "synth", total=1).open()
    j.record(0, {"y": 1.0}, 0.1)
    j.remove()
    assert not path.exists()
    j.remove()  # idempotent


def test_missing_file_resumes_empty(tmp_path):
    j = Journal(tmp_path / "absent.jsonl", KEY, "synth", total=3).open()
    assert j.resumed == {}
    assert not j.discarded_stale
    j.close()
