"""Reconnect backoff: capped, jittered, and overflow-proof.

A worker that outlives a long coordinator outage keeps incrementing its
attempt counter; the delay formula must stay bounded (and not raise)
no matter how large that counter grows — ``2 ** attempt`` overflows
float conversion past ~1000 doublings if evaluated before clamping.
"""

import pytest

from repro.fabric.worker import FleetWorker
from repro.serve.client import Address


def _worker(rng):
    return FleetWorker(Address(host="127.0.0.1", port=1), name="w", rng=rng)


def test_backoff_grows_then_caps():
    w = _worker(lambda: 0.5)  # jitter factor exactly 1.0
    delays = [w._backoff_s(a) for a in range(8)]
    assert delays[0] == pytest.approx(0.05)
    assert delays == sorted(delays)
    assert delays[-1] == pytest.approx(0.5)
    # Once at the cap, further failures do not wait longer.
    assert w._backoff_s(100) == pytest.approx(0.5)


@pytest.mark.parametrize("attempt", [0, 5, 64, 2000, 10**6, 10**9])
def test_backoff_is_finite_at_any_attempt(attempt):
    w = _worker(lambda: 0.999)
    delay = w._backoff_s(attempt)  # must not raise OverflowError
    assert 0.0 < delay < 0.75  # 0.5 cap times the max jitter factor


def test_backoff_jitter_spreads_the_fleet():
    lo = _worker(lambda: 0.0)._backoff_s(50)
    hi = _worker(lambda: 0.999)._backoff_s(50)
    assert lo == pytest.approx(0.25)
    assert hi > lo  # same attempt, different workers, different delays
