"""Fake-clock unit tests for the fleet's lease/retry/speculation state
machine — every failure schedule scripted in virtual time, no sockets,
no sleeps."""

import pytest

from repro.fabric import SweepTracker, TrackerConfig


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make(total=6, **cfg):
    clock = Clock()
    defaults = dict(worker_timeout_s=1.0, lease_timeout_s=10.0,
                    batch_size=2, max_attempts=3, retry_backoff_s=0.5)
    defaults.update(cfg)
    tracker = SweepTracker(range(total), total,
                           config=TrackerConfig(**defaults), clock=clock)
    return tracker, clock


def accept(tracker, worker, index, elapsed=1.0):
    return tracker.report_result(worker, index, {"y": float(index)}, elapsed)


def test_lease_grant_respects_batch_and_capacity():
    tracker, _ = make(total=6, batch_size=2)
    tracker.register("w0", capacity=4)
    verdict, grant = tracker.heartbeat("w0", free=4)
    assert verdict == "lease"
    assert grant == [0, 1]  # batch_size caps below capacity
    verdict, grant = tracker.heartbeat("w0", free=1)
    assert grant == [2]  # free capacity caps below batch_size


def test_unknown_worker_is_told_to_reregister():
    tracker, _ = make()
    assert tracker.heartbeat("ghost", free=1) == ("reregister", None)


def test_silent_worker_dies_and_its_leases_redispatch():
    tracker, clock = make(total=4, worker_timeout_s=1.0)
    tracker.register("w0", capacity=2)
    _, grant = tracker.heartbeat("w0", free=2)
    assert grant == [0, 1]
    tracker.register("w1", capacity=2)

    # w1 keeps heartbeating; w0 goes silent past the timeout.
    clock.advance(0.9)
    tracker.heartbeat("w1", free=0)
    clock.advance(0.2)
    tracker.tick()
    assert tracker.live_workers() == ["w1"]
    assert tracker.counters["dead_workers"] == 1
    assert tracker.counters["redispatched"] == 2

    # The revoked points come back *first* — they are the oldest work.
    _, regrant = tracker.heartbeat("w1", free=2)
    assert regrant == [0, 1]


def test_fresh_heartbeats_invalidate_stale_liveness_entries():
    tracker, clock = make(worker_timeout_s=1.0)
    tracker.register("w0", capacity=1)
    for _ in range(5):
        clock.advance(0.6)  # always inside the window
        verdict, _ = tracker.heartbeat("w0", free=0)
        assert verdict == "ok"
    assert tracker.live_workers() == ["w0"]
    assert tracker.counters["dead_workers"] == 0


def test_expired_lease_redispatches_without_killing_the_worker():
    tracker, clock = make(total=2, lease_timeout_s=2.0, worker_timeout_s=10.0)
    tracker.register("w0", capacity=1)
    _, grant = tracker.heartbeat("w0", free=1)
    assert grant == [0]
    clock.advance(2.5)
    tracker.tick()
    assert tracker.live_workers() == ["w0"]  # alive, just wedged
    assert tracker.counters["redispatched"] == 1
    tracker.register("w1", capacity=1)
    _, regrant = tracker.heartbeat("w1", free=1)
    assert regrant == [0]


def test_result_accepted_exactly_once_and_duplicates_counted():
    tracker, _ = make(total=2)
    tracker.register("w0", capacity=2)
    tracker.heartbeat("w0", free=2)
    assert accept(tracker, "w0", 0) is True
    assert accept(tracker, "w0", 0) is False
    assert accept(tracker, "w1", 0) is False  # zombie from elsewhere
    assert tracker.counters["duplicates"] == 2
    assert list(tracker.accepted) == [0]
    assert tracker.counters["results_accepted"] == 1


def test_result_without_live_lease_still_counts():
    # A worker partitioned long enough to be declared dead delivers its
    # finished point after re-registering: the work is not wasted.
    tracker, clock = make(total=2, worker_timeout_s=1.0)
    tracker.register("w0", capacity=1)
    _, grant = tracker.heartbeat("w0", free=1)
    assert grant == [0]
    clock.advance(2.0)
    tracker.tick()
    assert tracker.live_workers() == []
    assert accept(tracker, "w0", 0) is True
    assert tracker.accepted[0][0] == "w0"


def test_reregister_revokes_but_late_results_remain_acceptable():
    tracker, _ = make(total=4)
    tracker.register("w0", capacity=2)
    _, grant = tracker.heartbeat("w0", free=2)
    assert grant == [0, 1]
    tracker.register("w0", capacity=2)  # the worker came back
    assert tracker.counters["redispatched"] == 2
    assert accept(tracker, "w0", 0) is True  # pre-revocation work lands


def test_failure_retries_with_exponential_backoff():
    tracker, clock = make(total=1, retry_backoff_s=0.5, max_attempts=3)
    tracker.register("w0", capacity=1)
    assert tracker.heartbeat("w0", free=1)[1] == [0]
    tracker.report_failure("w0", 0, "boom")
    assert tracker.counters["retries"] == 1

    # Not requeued until the backoff elapses.
    tracker.tick()
    assert tracker.heartbeat("w0", free=1) == ("ok", None)
    clock.advance(0.6)
    assert tracker.heartbeat("w0", free=1)[1] == [0]

    # Second failure waits twice as long.
    tracker.report_failure("w0", 0, "boom")
    clock.advance(0.6)
    assert tracker.heartbeat("w0", free=1) == ("ok", None)
    clock.advance(0.5)
    assert tracker.heartbeat("w0", free=1)[1] == [0]


def test_quarantine_after_max_attempts_poisons_the_sweep():
    tracker, clock = make(total=2, max_attempts=2, retry_backoff_s=0.1)
    tracker.register("w0", capacity=1)
    assert tracker.heartbeat("w0", free=1)[1] == [0]
    tracker.report_failure("w0", 0, "boom 1")
    clock.advance(0.2)
    assert tracker.heartbeat("w0", free=1)[1] == [0]
    tracker.report_failure("w0", 0, "boom 2")
    assert tracker.poisoned
    assert tracker.poison == {0: "boom 2"}
    assert tracker.counters["quarantined"] == 1
    assert tracker.heartbeat("w0", free=1) == ("abort", None)


def test_speculation_replicates_stragglers_onto_idle_workers():
    tracker, clock = make(
        total=5, batch_size=4, worker_timeout_s=100.0, lease_timeout_s=100.0,
        speculation_quantile=0.5, speculation_factor=2.0,
        speculation_min_completed=3, max_replicas=2)
    tracker.register("w0", capacity=4)
    _, grant = tracker.heartbeat("w0", free=4)
    assert grant == [0, 1, 2, 3]
    for index in (0, 1, 2):
        accept(tracker, "w0", index, elapsed=1.0)
    _, grant = tracker.heartbeat("w0", free=1)
    assert grant == [4]  # queue drains before speculation

    # Point 3 has now been running 5x the median: an idle second
    # worker picks up a speculative replica.
    clock.advance(5.0)
    tracker.register("w1", capacity=1)
    verdict, grant = tracker.heartbeat("w1", free=1)
    assert (verdict, grant) == ("lease", [3])
    assert tracker.counters["speculative"] == 1

    # Point 4 is a straggler too (one replica so far): a third idle
    # worker replicates it...
    tracker.register("w2", capacity=1)
    assert tracker.heartbeat("w2", free=1) == ("lease", [4])
    assert tracker.counters["speculative"] == 2

    # ...but max_replicas stops any further attempt on either point.
    tracker.register("w3", capacity=1)
    assert tracker.heartbeat("w3", free=1) == ("ok", None)

    # The replica wins; the original's late delivery is a duplicate.
    assert accept(tracker, "w1", 3, elapsed=0.5) is True
    assert tracker.counters["speculative_wins"] == 1
    assert accept(tracker, "w0", 3) is False
    assert tracker.counters["duplicates"] == 1


def test_speculation_needs_enough_samples():
    tracker, clock = make(total=3, batch_size=4, worker_timeout_s=1000.0,
                          lease_timeout_s=1000.0, speculation_min_completed=3)
    tracker.register("w0", capacity=4)
    tracker.heartbeat("w0", free=4)
    accept(tracker, "w0", 0, elapsed=0.1)
    clock.advance(100.0)
    tracker.register("w1", capacity=1)
    # Only one duration on record: never speculate, however long the
    # remaining points have been running.
    assert tracker.heartbeat("w1", free=1) == ("ok", None)


def test_prefilled_points_are_never_leased():
    tracker, _ = make(total=4)
    tracker.prefill(0, {"y": 0.0})
    tracker.prefill(1, {"y": 1.0})
    tracker.register("w0", capacity=4)
    _, grant = tracker.heartbeat("w0", free=4)
    assert grant == [2, 3]
    accept(tracker, "w0", 2)
    accept(tracker, "w0", 3)
    assert tracker.finished
    assert tracker.heartbeat("w0", free=1) == ("done", None)
    acct = tracker.accounting()
    assert acct["prefilled"] == 2
    assert acct["accepted"] == 2
    assert acct["completed"] == 4


def test_accounting_is_exactly_once_under_a_messy_schedule():
    tracker, clock = make(total=4, worker_timeout_s=1.0,
                          retry_backoff_s=0.1, batch_size=4)
    tracker.register("w0", capacity=4)
    tracker.heartbeat("w0", free=4)
    accept(tracker, "w0", 0)
    tracker.report_failure("w0", 1, "flake")
    clock.advance(2.0)  # w0 dies; 2, 3 revoke; retry for 1 comes due
    tracker.register("w1", capacity=4)
    _, grant = tracker.heartbeat("w1", free=4)
    assert sorted(grant) == [1, 2, 3]
    for index in grant:
        accept(tracker, "w1", index)
    accept(tracker, "w0", 2)  # zombie delivery
    assert tracker.finished
    acct = tracker.accounting()
    assert acct["accepted"] == 4
    assert acct["completed"] == 4
    assert acct["duplicates"] == 1
    assert sorted(tracker.accepted) == [0, 1, 2, 3]


@pytest.mark.parametrize("bad", [-1, 99])
def test_out_of_range_results_are_dropped(bad):
    tracker, _ = make(total=4)
    tracker.register("w0", capacity=1)
    assert tracker.report_result("w0", bad, {"y": 0.0}, 0.1) is False
    assert tracker.counters["duplicates"] == 1
